// Lightweight precondition / invariant checking for the adafl libraries.
//
// ADAFL_CHECK is used for conditions that indicate API misuse or corrupted
// state; it throws (never aborts) so that callers and tests can observe the
// failure. Following the C++ Core Guidelines (I.5/I.6, E.12), preconditions
// are part of the interface contract and are documented at the call sites.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace adafl {

/// Error thrown when an ADAFL_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "ADAFL_CHECK failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace adafl

/// Checks `cond`; on failure throws adafl::CheckError with an optional
/// streamed message: ADAFL_CHECK(n > 0) << "n was " << n;  (message is lazy).
#define ADAFL_CHECK(cond)                                                   \
  if (cond) {                                                               \
  } else                                                                    \
    ::adafl::detail::check_failed(#cond, __FILE__, __LINE__, std::string())

/// Variant carrying a message built with a stream expression.
#define ADAFL_CHECK_MSG(cond, msgexpr)                                      \
  if (cond) {                                                               \
  } else {                                                                  \
    std::ostringstream adafl_check_os_;                                     \
    adafl_check_os_ << msgexpr;                                             \
    ::adafl::detail::check_failed(#cond, __FILE__, __LINE__,                \
                                  adafl_check_os_.str());                   \
  }                                                                         \
  static_assert(true, "require trailing semicolon")

/// Debug-build assertion that a pointer honors the 32-byte tensor-storage
/// alignment SIMD kernels rely on (tensor::kTensorAlignment). Null is
/// trivially aligned. Compiles away under NDEBUG so it costs nothing on the
/// release hot path.
#ifndef NDEBUG
#define ADAFL_DCHECK_ALIGNED32(ptr)                                         \
  ADAFL_CHECK_MSG(                                                          \
      (reinterpret_cast<std::uintptr_t>(ptr) & std::uintptr_t{31}) == 0,    \
      "pointer " << static_cast<const void*>(ptr)                           \
                 << " violates the 32-byte tensor storage alignment")
#else
#define ADAFL_DCHECK_ALIGNED32(ptr)                                         \
  static_assert(true, "require trailing semicolon")
#endif
