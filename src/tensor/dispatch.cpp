#include "tensor/dispatch.h"

#include <atomic>
#include <cstdlib>

#include "tensor/check.h"

#if defined(__x86_64__) || defined(__i386__)
#define ADAFL_X86 1
#else
#define ADAFL_X86 0
#endif

namespace adafl::tensor {

// Defined in kernels_avx2.cpp; returns nullptr when the backend was compiled
// out (non-x86 target or a toolchain without -mavx2 -mfma support).
const KernelTable* avx2_kernel_table_or_null();

namespace {

// Active table + backend. The table pointer is what the hot path reads; the
// backend enum rides along for reporting. Both only ever transition between
// fully-built static tables, so a torn read is impossible.
std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<int> g_backend{static_cast<int>(KernelBackend::kScalar)};

void store_backend(KernelBackend b, const KernelTable* t) {
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
  g_table.store(t, std::memory_order_release);
}

// First-use resolution of ADAFL_KERNEL_BACKEND. Runs at most once (thread-safe
// via the magic-static); an explicit set_kernel_backend() beforehand wins
// because it already published a table.
void ensure_initialized() {
  static const bool done = [] {
    if (g_table.load(std::memory_order_acquire) == nullptr) {
      const char* env = std::getenv("ADAFL_KERNEL_BACKEND");
      if (env != nullptr && env[0] != '\0')
        set_kernel_backend(resolve_kernel_backend(env));
      else
        store_backend(KernelBackend::kScalar, &scalar_kernel_table());
    }
    return true;
  }();
  (void)done;
}

}  // namespace

bool cpu_supports_avx2() {
#if ADAFL_X86 && defined(__GNUC__)
  return avx2_kernel_table_or_null() != nullptr &&
         __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

std::string cpu_feature_string() {
  std::string s;
#if ADAFL_X86 && defined(__GNUC__)
  const auto append = [&s](const char* name) {
    if (!s.empty()) s += ',';
    s += name;
  };
  if (__builtin_cpu_supports("sse2")) append("sse2");
  if (__builtin_cpu_supports("sse4.2")) append("sse4.2");
  if (__builtin_cpu_supports("avx")) append("avx");
  if (__builtin_cpu_supports("avx2")) append("avx2");
  if (__builtin_cpu_supports("fma")) append("fma");
  if (__builtin_cpu_supports("avx512f")) append("avx512f");
#endif
  if (s.empty()) s = "none";
  return s;
}

KernelBackend kernel_backend() {
  ensure_initialized();
  return static_cast<KernelBackend>(g_backend.load(std::memory_order_relaxed));
}

const KernelTable& active_kernels() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    ensure_initialized();
    t = g_table.load(std::memory_order_acquire);
  }
  return *t;
}

void set_kernel_backend(KernelBackend b) {
  switch (b) {
    case KernelBackend::kScalar:
      store_backend(b, &scalar_kernel_table());
      return;
    case KernelBackend::kAvx2: {
      ADAFL_CHECK_MSG(cpu_supports_avx2(),
                      "kernel backend 'avx2' requested but this CPU/build "
                      "does not support AVX2+FMA (features: "
                          << cpu_feature_string() << ")");
      store_backend(b, avx2_kernel_table_or_null());
      return;
    }
  }
  ADAFL_CHECK_MSG(false, "unknown kernel backend "
                             << static_cast<int>(b));
}

KernelBackend resolve_kernel_backend(const std::string& name) {
  if (name.empty() || name == "auto")
    return cpu_supports_avx2() ? KernelBackend::kAvx2 : KernelBackend::kScalar;
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "avx2") {
    ADAFL_CHECK_MSG(cpu_supports_avx2(),
                    "kernel backend 'avx2' requested but this CPU/build does "
                    "not support AVX2+FMA (features: "
                        << cpu_feature_string()
                        << "); use --kernel-backend=auto for best-available");
    return KernelBackend::kAvx2;
  }
  ADAFL_CHECK_MSG(false, "unknown kernel backend '"
                             << name << "' (expected auto|scalar|avx2)");
  return KernelBackend::kScalar;  // unreachable
}

const char* kernel_backend_name(KernelBackend b) {
  return b == KernelBackend::kAvx2 ? "avx2" : "scalar";
}

const char* kernel_backend_name() {
  return kernel_backend_name(kernel_backend());
}

}  // namespace adafl::tensor
