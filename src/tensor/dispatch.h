// Runtime-dispatched kernel backends.
//
// Every hot loop in the tensor/compress stack is reachable through one
// process-wide KernelTable of raw-pointer kernels. Two backends exist:
//
//   * scalar — the historical loop bodies, unchanged. This is the bitwise
//     reference implementation: all golden/determinism/trace-equivalence
//     guarantees are stated against it, and it is the default when nothing
//     selects a backend explicitly.
//   * avx2   — AVX2/FMA implementations (src/tensor/kernels_avx2.cpp,
//     compiled with -mavx2 -mfma) selected only when the CPU reports the
//     features at startup. Matmul-family results differ from scalar by
//     rounding (FMA + vector accumulation order) — epsilon equivalent,
//     pinned by tests/test_simd_kernels.cpp. The elementwise, log-softmax,
//     top-k scan, and QSGD pack/unpack kernels are bitwise identical to
//     scalar by construction (same per-element operations; log-softmax
//     vectorizes only the max scan and the broadcast-subtract, both exact).
//
// Determinism contract: WITHIN a backend, every kernel is bitwise
// deterministic at any thread count (per-element accumulation chains are
// independent of the parallel partition), so the PR-1 guarantee "same
// config, same bits, any thread count" holds per backend.
//
// Selection precedence: set_kernel_backend() (CLI --kernel-backend flag,
// tests) > ADAFL_KERNEL_BACKEND environment variable > scalar. "auto"
// resolves to avx2 when supported, scalar otherwise; requesting "avx2" on
// hardware without AVX2+FMA is a hard error, never a silent fallback.
#pragma once

#include <cstdint>
#include <string>

namespace adafl::tensor {

enum class KernelBackend { kScalar = 0, kAvx2 = 1 };

/// The dispatchable kernel set. All pointers are non-null in a registered
/// table. Shape/size validation happens in the ops.h / codec.h entry
/// points; these functions assume valid inputs.
struct KernelTable {
  // ---- matmul family (row-major; contracts match tensor/ops.h) ----
  /// C[m,n] += A[m,k] * B[k,n].
  void (*matmul)(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n);
  /// C[m,n] += A[k,m]^T * B[k,n].
  void (*matmul_tn)(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n);
  /// C[m,n] = A[m,k] * B[n,k]^T (fully overwrites C).
  void (*matmul_nt)(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n);

  // ---- elementwise over n contiguous floats ----
  void (*add)(const float* a, const float* b, float* out, std::int64_t n);
  void (*mul)(const float* a, const float* b, float* out, std::int64_t n);
  void (*scale)(const float* a, float s, float* out, std::int64_t n);
  /// out[i] = max(a[i], 0); mask[i] = a[i] > 0 ? 1 : 0.
  void (*relu)(const float* a, float* out, float* mask, std::int64_t n);

  /// Row-wise log-softmax of an [n, c] matrix (fully overwrites out).
  void (*log_softmax_rows)(const float* logits, float* out, std::int64_t n,
                           std::int64_t c);

  // ---- compress-layer kernels ----
  /// out[i] = IEEE-754 bit pattern of |v[i]| (sign bit cleared). Non-negative
  /// floats order identically as unsigned integers, so magnitude comparisons
  /// downstream are integer compares.
  void (*abs_bits)(const float* v, std::uint32_t* out, std::int64_t n);
  /// Appends every index i with abs_bits(v[i]) > threshold to out (ascending
  /// index order); returns the count. Caller guarantees capacity.
  std::int64_t (*scan_abs_gt)(const float* v, std::int64_t n,
                              std::uint32_t threshold, std::uint32_t* out);
  /// Like scan_abs_gt but == threshold, stopping after max_out hits.
  std::int64_t (*scan_abs_eq)(const float* v, std::int64_t n,
                              std::uint32_t threshold, std::uint32_t* out,
                              std::int64_t max_out);
  /// QSGD pack half: out[i] = |double(g[i])| / norm * s  (norm > 0).
  void (*qsgd_ratios)(const float* g, double norm, double s, double* out,
                      std::int64_t n);
  /// QSGD/ternary unpack half: out[i] = scale * float(levels[i]) / denom.
  void (*qsgd_unpack)(const std::int8_t* levels, float scale, float denom,
                      float* out, std::int64_t n);
};

/// The scalar reference table (defined in kernels_scalar.cpp).
const KernelTable& scalar_kernel_table();

/// True when this build carries the AVX2 backend AND the CPU reports
/// AVX2 + FMA at runtime.
bool cpu_supports_avx2();

/// Comma-separated CPU SIMD features detected at runtime (e.g.
/// "avx2,fma,avx512f"); "none" when nothing relevant is present.
std::string cpu_feature_string();

/// Currently active backend. Before any explicit selection, the first call
/// resolves ADAFL_KERNEL_BACKEND (auto|scalar|avx2); unset means scalar.
KernelBackend kernel_backend();

/// The active kernel table (hot-path accessor: one relaxed atomic load).
const KernelTable& active_kernels();

/// Explicitly selects a backend. Throws adafl::CheckError when kAvx2 is
/// requested but unsupported. Not thread-safe against in-flight kernels;
/// call at startup or between rounds (tests).
void set_kernel_backend(KernelBackend b);

/// Parses "auto" | "scalar" | "avx2" ("" == "auto") into a concrete
/// backend: "auto" picks avx2 when supported, else scalar. Throws
/// adafl::CheckError on unknown names or an unsupported explicit "avx2".
KernelBackend resolve_kernel_backend(const std::string& name);

/// "scalar" or "avx2".
const char* kernel_backend_name(KernelBackend b);

/// kernel_backend_name(kernel_backend()).
const char* kernel_backend_name();

}  // namespace adafl::tensor
