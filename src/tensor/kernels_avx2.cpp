// AVX2/FMA kernel backend.
//
// Compiled with -mavx2 -mfma (per-file flags in src/tensor/CMakeLists.txt);
// the implementation is guarded so a toolchain or target without those
// features still links (avx2_kernel_table_or_null() returns nullptr and the
// dispatcher never selects this backend).
//
// Numerics contract (pinned by tests/test_simd_kernels.cpp):
//   * matmul / matmul_tn / matmul_nt: epsilon-equivalent to scalar (FMA and
//     16-lane accumulation change rounding), but bitwise deterministic at any
//     thread count within this backend — every C element accumulates over an
//     ascending-k FMA chain whose structure depends only on (k, its j-tile),
//     never on the row partition or the register-tile height.
//   * add / mul / scale / relu, abs_bits, scan_abs_gt / scan_abs_eq,
//     qsgd_ratios / qsgd_unpack, log_softmax_rows: bitwise identical to the
//     scalar reference (same per-element operations in the same order).
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "core/parallel.h"
#include "tensor/dispatch.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace adafl::tensor {

namespace {

// Same serial/parallel grain as the scalar backend: the decision is a
// constant, so results stay independent of the configured thread count.
constexpr std::int64_t kParallelGrainFlops = 1 << 18;

// Depth blocking for the GEMM kernels. At block boundaries the C tile round-
// trips through memory (float rounding), which is part of this backend's
// deterministic accumulation chain definition.
constexpr std::int64_t kKc = 256;

// Widest register tile: 6 rows x 16 columns = 12 ymm accumulators, leaving
// registers for two B vectors and the A broadcast.
constexpr int kTileRows = 6;

// Lane masks for n-tails: mask_for(c) enables the first c of 8 lanes.
alignas(32) constexpr std::int32_t kMaskTable[16] = {
    -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};

inline __m256i mask_for(std::int64_t active_lanes) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - active_lanes));
}

// One H x 16 tile of C over a depth block of klen:
//   c(h, j) (+)= sum_kk a(h, kk) * b(kk, j)
// a(h, kk) = a[h * a_row + kk * a_dep]; b(kk, *) is 16 floats at b + kk *
// b_row; c rows have stride c_row. With Tail, the j range is masked by
// mlo/mhi (B and C loads/stores skip disabled lanes, so no out-of-bounds
// access). init_zero starts the accumulators at zero (overwrite semantics of
// the first depth block of matmul_nt) instead of loading C.
template <int H, bool Tail>
inline void gemm_tile(const float* a, std::int64_t a_row, std::int64_t a_dep,
                      const float* b, std::int64_t b_row, float* c,
                      std::int64_t c_row, std::int64_t klen, bool init_zero,
                      __m256i mlo, __m256i mhi) {
  __m256 acc0[H], acc1[H];
  for (int h = 0; h < H; ++h) {
    if (init_zero) {
      acc0[h] = _mm256_setzero_ps();
      acc1[h] = _mm256_setzero_ps();
    } else if (Tail) {
      acc0[h] = _mm256_maskload_ps(c + h * c_row, mlo);
      acc1[h] = _mm256_maskload_ps(c + h * c_row + 8, mhi);
    } else {
      acc0[h] = _mm256_loadu_ps(c + h * c_row);
      acc1[h] = _mm256_loadu_ps(c + h * c_row + 8);
    }
  }
  for (std::int64_t kk = 0; kk < klen; ++kk) {
    __m256 b0, b1;
    if (Tail) {
      b0 = _mm256_maskload_ps(b + kk * b_row, mlo);
      b1 = _mm256_maskload_ps(b + kk * b_row + 8, mhi);
    } else {
      b0 = _mm256_loadu_ps(b + kk * b_row);
      b1 = _mm256_loadu_ps(b + kk * b_row + 8);
    }
    for (int h = 0; h < H; ++h) {
      const __m256 av = _mm256_broadcast_ss(a + h * a_row + kk * a_dep);
      acc0[h] = _mm256_fmadd_ps(av, b0, acc0[h]);
      acc1[h] = _mm256_fmadd_ps(av, b1, acc1[h]);
    }
  }
  for (int h = 0; h < H; ++h) {
    if (Tail) {
      _mm256_maskstore_ps(c + h * c_row, mlo, acc0[h]);
      _mm256_maskstore_ps(c + h * c_row + 8, mhi, acc1[h]);
    } else {
      _mm256_storeu_ps(c + h * c_row, acc0[h]);
      _mm256_storeu_ps(c + h * c_row + 8, acc1[h]);
    }
  }
}

// Row-count dispatch for the sub-kTileRows tail of a row chunk.
template <bool Tail>
inline void gemm_tile_rows(int rows, const float* a, std::int64_t a_row,
                           std::int64_t a_dep, const float* b,
                           std::int64_t b_row, float* c, std::int64_t c_row,
                           std::int64_t klen, bool init_zero, __m256i mlo,
                           __m256i mhi) {
  switch (rows) {
    case 6:
      gemm_tile<6, Tail>(a, a_row, a_dep, b, b_row, c, c_row, klen, init_zero,
                         mlo, mhi);
      break;
    case 5:
      gemm_tile<5, Tail>(a, a_row, a_dep, b, b_row, c, c_row, klen, init_zero,
                         mlo, mhi);
      break;
    case 4:
      gemm_tile<4, Tail>(a, a_row, a_dep, b, b_row, c, c_row, klen, init_zero,
                         mlo, mhi);
      break;
    case 3:
      gemm_tile<3, Tail>(a, a_row, a_dep, b, b_row, c, c_row, klen, init_zero,
                         mlo, mhi);
      break;
    case 2:
      gemm_tile<2, Tail>(a, a_row, a_dep, b, b_row, c, c_row, klen, init_zero,
                         mlo, mhi);
      break;
    case 1:
      gemm_tile<1, Tail>(a, a_row, a_dep, b, b_row, c, c_row, klen, init_zero,
                         mlo, mhi);
      break;
    default:
      break;
  }
}

// Shared accumulate-GEMM driver for matmul (a_row=k, a_dep=1) and matmul_tn
// (a_row=1, a_dep=m): C[m,n] += op(A) * B with B accessed directly at row
// stride n. C must hold the starting values on entry.
void gemm_accumulate(const float* pa, std::int64_t a_row, std::int64_t a_dep,
                     const float* pb, float* pc, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  auto rows = [&](std::int64_t ib, std::int64_t ie) {
    for (std::int64_t jt = 0; jt < n; jt += 16) {
      const std::int64_t rem = n - jt;
      const bool tail = rem < 16;
      const __m256i mlo = mask_for(std::min<std::int64_t>(rem, 8));
      const __m256i mhi = mask_for(std::max<std::int64_t>(rem - 8, 0));
      for (std::int64_t kb = 0; kb < k; kb += kKc) {
        const std::int64_t klen = std::min(kKc, k - kb);
        const float* bblk = pb + kb * n + jt;
        std::int64_t i = ib;
        for (; i + kTileRows <= ie; i += kTileRows) {
          const float* ablk = pa + i * a_row + kb * a_dep;
          float* cblk = pc + i * n + jt;
          if (tail)
            gemm_tile<kTileRows, true>(ablk, a_row, a_dep, bblk, n, cblk, n,
                                       klen, false, mlo, mhi);
          else
            gemm_tile<kTileRows, false>(ablk, a_row, a_dep, bblk, n, cblk, n,
                                        klen, false, mlo, mhi);
        }
        if (i < ie) {
          const float* ablk = pa + i * a_row + kb * a_dep;
          float* cblk = pc + i * n + jt;
          const int h = static_cast<int>(ie - i);
          if (tail)
            gemm_tile_rows<true>(h, ablk, a_row, a_dep, bblk, n, cblk, n, klen,
                                 false, mlo, mhi);
          else
            gemm_tile_rows<false>(h, ablk, a_row, a_dep, bblk, n, cblk, n,
                                  klen, false, mlo, mhi);
        }
      }
    }
  };
  if (m * k * n < kParallelGrainFlops)
    rows(0, m);
  else
    core::parallel_for_blocked(0, m, rows);
}

void matmul_avx2(const float* pa, const float* pb, float* pc, std::int64_t m,
                 std::int64_t k, std::int64_t n) {
  gemm_accumulate(pa, /*a_row=*/k, /*a_dep=*/1, pb, pc, m, k, n);
}

void matmul_tn_avx2(const float* pa, const float* pb, float* pc,
                    std::int64_t m, std::int64_t k, std::int64_t n) {
  gemm_accumulate(pa, /*a_row=*/1, /*a_dep=*/m, pb, pc, m, k, n);
}

// C[m,n] = A[m,k] * B[n,k]^T; fully overwrites C. B rows are the reduction
// axis here, so a depth block of a 16-column tile is transpose-packed into a
// contiguous (klen x 16) panel once per (chunk, j-tile, depth block) and
// served from L1 for every row of the chunk — this is what closes matmul_nt's
// historical gap vs matmul. The first depth block starts accumulators at
// zero; later blocks resume from C.
void matmul_nt_avx2(const float* pa, const float* pb, float* pc,
                    std::int64_t m, std::int64_t k, std::int64_t n) {
  auto rows = [&](std::int64_t ib, std::int64_t ie) {
    if (k == 0) {  // overwrite semantics: an empty reduction writes zeros
      for (std::int64_t i = ib; i < ie; ++i)
        std::memset(pc + i * n, 0, static_cast<std::size_t>(n) * sizeof(float));
      return;
    }
    alignas(32) float bp[kKc * 16];
    for (std::int64_t jt = 0; jt < n; jt += 16) {
      const std::int64_t rem = n - jt;
      const std::int64_t jw = std::min<std::int64_t>(rem, 16);
      const bool tail = rem < 16;
      const __m256i mlo = mask_for(std::min<std::int64_t>(rem, 8));
      const __m256i mhi = mask_for(std::max<std::int64_t>(rem - 8, 0));
      for (std::int64_t kb = 0; kb < k; kb += kKc) {
        const std::int64_t klen = std::min(kKc, k - kb);
        for (std::int64_t jj = 0; jj < jw; ++jj) {
          const float* bsrc = pb + (jt + jj) * k + kb;
          for (std::int64_t kk = 0; kk < klen; ++kk)
            bp[kk * 16 + jj] = bsrc[kk];
        }
        if (jw < 16) {  // zero-pad ghost columns so full-width loads are safe
          for (std::int64_t kk = 0; kk < klen; ++kk)
            for (std::int64_t jj = jw; jj < 16; ++jj) bp[kk * 16 + jj] = 0.0f;
        }
        const bool first = kb == 0;
        std::int64_t i = ib;
        for (; i + kTileRows <= ie; i += kTileRows) {
          const float* ablk = pa + i * k + kb;
          float* cblk = pc + i * n + jt;
          if (tail)
            gemm_tile<kTileRows, true>(ablk, k, 1, bp, 16, cblk, n, klen,
                                       first, mlo, mhi);
          else
            gemm_tile<kTileRows, false>(ablk, k, 1, bp, 16, cblk, n, klen,
                                        first, mlo, mhi);
        }
        if (i < ie) {
          const float* ablk = pa + i * k + kb;
          float* cblk = pc + i * n + jt;
          const int h = static_cast<int>(ie - i);
          if (tail)
            gemm_tile_rows<true>(h, ablk, k, 1, bp, 16, cblk, n, klen, first,
                                 mlo, mhi);
          else
            gemm_tile_rows<false>(h, ablk, k, 1, bp, 16, cblk, n, klen, first,
                                  mlo, mhi);
        }
      }
    }
  };
  if (m * k * n < kParallelGrainFlops)
    rows(0, m);
  else
    core::parallel_for_blocked(0, m, rows);
}

void add_avx2(const float* pa, const float* pb, float* po, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        po + i, _mm256_add_ps(_mm256_loadu_ps(pa + i), _mm256_loadu_ps(pb + i)));
  for (; i < n; ++i) po[i] = pa[i] + pb[i];
}

void mul_avx2(const float* pa, const float* pb, float* po, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        po + i, _mm256_mul_ps(_mm256_loadu_ps(pa + i), _mm256_loadu_ps(pb + i)));
  for (; i < n; ++i) po[i] = pa[i] * pb[i];
}

void scale_avx2(const float* pa, float s, float* po, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(po + i, _mm256_mul_ps(vs, _mm256_loadu_ps(pa + i)));
  for (; i < n; ++i) po[i] = s * pa[i];
}

void relu_avx2(const float* pa, float* po, float* pm, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(pa + i);
    // GT_OQ is false for NaN, matching the scalar `a > 0` predicate; and_ps
    // with the mask reproduces `pos ? x : 0` exactly (including -0 -> +0).
    const __m256 gt = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(pm + i, _mm256_and_ps(gt, one));
    _mm256_storeu_ps(po + i, _mm256_and_ps(gt, v));
  }
  for (; i < n; ++i) {
    const bool pos = pa[i] > 0.0f;
    pm[i] = pos ? 1.0f : 0.0f;
    po[i] = pos ? pa[i] : 0.0f;
  }
}

void log_softmax_rows_avx2(const float* logits, float* out, std::int64_t n,
                           std::int64_t c) {
  // The exp/log reduction stays scalar-double (it IS the numerics contract:
  // this kernel is bitwise identical to the reference); SIMD covers the max
  // scan and the final broadcast-subtract. Max is exact, subtraction is a
  // single correctly-rounded op per element, so bit-equality holds.
  auto rows = [&](std::int64_t ib, std::int64_t ie) {
    for (std::int64_t i = ib; i < ie; ++i) {
      const float* row = logits + i * c;
      float* orow = out + i * c;
      float mx;
      {
        std::int64_t j = 0;
        if (c >= 8) {
          __m256 vmax = _mm256_loadu_ps(row);
          for (j = 8; j + 8 <= c; j += 8)
            vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row + j));
          alignas(32) float lanes[8];
          _mm256_store_ps(lanes, vmax);
          mx = lanes[0];
          for (int l = 1; l < 8; ++l) mx = std::max(mx, lanes[l]);
        } else {
          mx = row[0];
          j = 1;
        }
        for (; j < c; ++j) mx = std::max(mx, row[j]);
      }
      double sum = 0.0;
      for (std::int64_t j = 0; j < c; ++j) sum += std::exp(row[j] - mx);
      const float lse = mx + static_cast<float>(std::log(sum));
      const __m256 vlse = _mm256_set1_ps(lse);
      std::int64_t j = 0;
      for (; j + 8 <= c; j += 8)
        _mm256_storeu_ps(orow + j,
                         _mm256_sub_ps(_mm256_loadu_ps(row + j), vlse));
      for (; j < c; ++j) orow[j] = row[j] - lse;
    }
  };
  if (n * c < 1 << 14)
    rows(0, n);
  else
    core::parallel_for_blocked(0, n, rows);
}

void abs_bits_avx2(const float* v, std::uint32_t* out, std::int64_t n) {
  const __m256i absmask = _mm256_set1_epi32(0x7fffffff);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i bits = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)), absmask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), bits);
  }
  for (; i < n; ++i)
    out[i] = std::bit_cast<std::uint32_t>(v[i]) & 0x7fffffffu;
}

// Abs-bits values are <= 0x7fffffff, i.e. non-negative as int32, so the
// signed SIMD compares below order them exactly like unsigned compares.
std::int64_t scan_abs_gt_avx2(const float* v, std::int64_t n,
                              std::uint32_t threshold, std::uint32_t* out) {
  const __m256i absmask = _mm256_set1_epi32(0x7fffffff);
  const __m256i thr = _mm256_set1_epi32(static_cast<std::int32_t>(threshold));
  std::int64_t cnt = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i bits = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)), absmask);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(bits, thr))));
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      out[cnt++] = static_cast<std::uint32_t>(i + lane);
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if ((std::bit_cast<std::uint32_t>(v[i]) & 0x7fffffffu) > threshold)
      out[cnt++] = static_cast<std::uint32_t>(i);
  }
  return cnt;
}

std::int64_t scan_abs_eq_avx2(const float* v, std::int64_t n,
                              std::uint32_t threshold, std::uint32_t* out,
                              std::int64_t max_out) {
  const __m256i absmask = _mm256_set1_epi32(0x7fffffff);
  const __m256i thr = _mm256_set1_epi32(static_cast<std::int32_t>(threshold));
  std::int64_t cnt = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n && cnt < max_out; i += 8) {
    const __m256i bits = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)), absmask);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(bits, thr))));
    while (mask != 0 && cnt < max_out) {
      const int lane = __builtin_ctz(mask);
      out[cnt++] = static_cast<std::uint32_t>(i + lane);
      mask &= mask - 1;
    }
  }
  for (; i < n && cnt < max_out; ++i) {
    if ((std::bit_cast<std::uint32_t>(v[i]) & 0x7fffffffu) == threshold)
      out[cnt++] = static_cast<std::uint32_t>(i);
  }
  return cnt;
}

void qsgd_ratios_avx2(const float* g, double norm, double s, double* out,
                      std::int64_t n) {
  // float abs then exact promotion commutes with promote-then-clear-sign;
  // divide and multiply are single correctly-rounded ops in the scalar
  // order, so this is bitwise identical to the reference.
  const __m256d vnorm = _mm256_set1_pd(norm);
  const __m256d vs = _mm256_set1_pd(s);
  const __m256d signbit = _mm256_set1_pd(-0.0);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_cvtps_pd(_mm_loadu_ps(g + i));
    const __m256d a = _mm256_andnot_pd(signbit, d);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_div_pd(a, vnorm), vs));
  }
  for (; i < n; ++i)
    out[i] = static_cast<double>(std::abs(g[i])) / norm * s;
}

void qsgd_unpack_avx2(const std::int8_t* levels, float scale, float denom,
                      float* out, std::int64_t n) {
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vdenom = _mm256_set1_ps(denom);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i b8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(levels + i));
    const __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b8));
    _mm256_storeu_ps(out + i,
                     _mm256_div_ps(_mm256_mul_ps(vscale, f), vdenom));
  }
  for (; i < n; ++i)
    out[i] = scale * static_cast<float>(levels[i]) / denom;
}

}  // namespace

const KernelTable* avx2_kernel_table_or_null() {
  static const KernelTable table = {
      /*matmul=*/matmul_avx2,
      /*matmul_tn=*/matmul_tn_avx2,
      /*matmul_nt=*/matmul_nt_avx2,
      /*add=*/add_avx2,
      /*mul=*/mul_avx2,
      /*scale=*/scale_avx2,
      /*relu=*/relu_avx2,
      /*log_softmax_rows=*/log_softmax_rows_avx2,
      /*abs_bits=*/abs_bits_avx2,
      /*scan_abs_gt=*/scan_abs_gt_avx2,
      /*scan_abs_eq=*/scan_abs_eq_avx2,
      /*qsgd_ratios=*/qsgd_ratios_avx2,
      /*qsgd_unpack=*/qsgd_unpack_avx2,
  };
  return &table;
}

}  // namespace adafl::tensor

#else  // !(__AVX2__ && __FMA__)

namespace adafl::tensor {

const KernelTable* avx2_kernel_table_or_null() { return nullptr; }

}  // namespace adafl::tensor

#endif
