// Scalar reference backend.
//
// These are the historical loop bodies, moved verbatim out of ops.cpp and
// codec.cpp so they can sit behind the kernel table. They define the bitwise
// reference semantics every other backend is tested against; do not "clean
// up" operation order here — it is the contract.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "core/parallel.h"
#include "tensor/dispatch.h"

namespace adafl::tensor {

namespace {

// Matmuls below this many multiply-adds run serially: the fork-join
// overhead of the pool (~a few microseconds) dominates on small shapes.
// The threshold is a constant, so the serial/parallel decision — and with
// it every result — is independent of the configured thread count.
constexpr std::int64_t kParallelGrainFlops = 1 << 18;

// C[m,n] += A[m,k] * B[k,n]; pc must hold the starting values (zeros for a
// plain product).
//
// The __restrict__ qualifiers (here and in matmul_tn) re-state what the
// ops.h entry points already guarantee — output storage is disjoint from
// the inputs. When these bodies lived inline in ops.cpp the compiler could
// prove that from the fresh Tensor allocation and auto-vectorize the inner
// j loop; behind a table function pointer it must be told, or the loop
// drops to scalar adds (~2.5x slower). Top-level restrict does not change
// the function type, so the table signature stays plain pointers, and
// per-element vectorization of `crow[j] += av * brow[j]` is bitwise
// neutral (no reassociation, no FMA at the base ISA).
void matmul_scalar(const float* __restrict__ pa, const float* __restrict__ pb,
                   float* __restrict__ pc, std::int64_t m, std::int64_t k,
                   std::int64_t n) {
  // ikj loop order: unit-stride access on B and C. Parallel over disjoint
  // row blocks of C; each element accumulates in ascending-k order, so the
  // result is bitwise independent of the partitioning.
  auto rows = [&](std::int64_t ib, std::int64_t ie) {
    for (std::int64_t i = ib; i < ie; ++i) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = pa[i * k + kk];
        if (av == 0.0f) continue;
        const float* __restrict__ brow = pb + kk * n;
        float* __restrict__ crow = pc + i * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  };
  if (m * k * n < kParallelGrainFlops)
    rows(0, m);
  else
    core::parallel_for_blocked(0, m, rows);
}

// C[m,n] += A[k,m]^T * B[k,n]; pc must hold the starting values.
void matmul_tn_scalar(const float* __restrict__ pa,
                      const float* __restrict__ pb, float* __restrict__ pc,
                      std::int64_t m, std::int64_t k, std::int64_t n) {
  // Row blocks of C are independent. Within a row, k ascends exactly as in
  // the historical kk-outer loop, so every element sums in the same order.
  auto rows = [&](std::int64_t ib, std::int64_t ie) {
    for (std::int64_t i = ib; i < ie; ++i) {
      float* __restrict__ crow = pc + i * n;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = pa[kk * m + i];
        if (av == 0.0f) continue;
        const float* __restrict__ brow = pb + kk * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  };
  if (m * k * n < kParallelGrainFlops)
    rows(0, m);
  else
    core::parallel_for_blocked(0, m, rows);
}

// C[m,n] = A[m,k] * B[n,k]^T; fully overwrites pc.
void matmul_nt_scalar(const float* pa, const float* pb, float* pc,
                      std::int64_t m, std::int64_t k, std::int64_t n) {
  // Cache-blocked dot-product kernel. B is walked in tiles of kBj rows so a
  // tile is served from cache for every row of the A block, and within a
  // tile four output columns accumulate in flight (independent double
  // accumulators -> instruction-level parallelism). Each element still sums
  // a_ik * b_jk in ascending-k order into one double, so the result is
  // bitwise identical to the naive triple loop at any block size or thread
  // count.
  constexpr std::int64_t kBj = 32;
  auto rows = [&](std::int64_t ib, std::int64_t ie) {
    for (std::int64_t jj = 0; jj < n; jj += kBj) {
      const std::int64_t je = std::min(jj + kBj, n);
      for (std::int64_t i = ib; i < ie; ++i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * n;
        std::int64_t j = jj;
        for (; j + 4 <= je; j += 4) {
          const float* b0 = pb + j * k;
          const float* b1 = b0 + k;
          const float* b2 = b1 + k;
          const float* b3 = b2 + k;
          double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
          for (std::int64_t kk = 0; kk < k; ++kk) {
            const double av = static_cast<double>(arow[kk]);
            a0 += av * static_cast<double>(b0[kk]);
            a1 += av * static_cast<double>(b1[kk]);
            a2 += av * static_cast<double>(b2[kk]);
            a3 += av * static_cast<double>(b3[kk]);
          }
          crow[j] = static_cast<float>(a0);
          crow[j + 1] = static_cast<float>(a1);
          crow[j + 2] = static_cast<float>(a2);
          crow[j + 3] = static_cast<float>(a3);
        }
        for (; j < je; ++j) {
          const float* brow = pb + j * k;
          double acc = 0.0;
          for (std::int64_t kk = 0; kk < k; ++kk)
            acc +=
                static_cast<double>(arow[kk]) * static_cast<double>(brow[kk]);
          crow[j] = static_cast<float>(acc);
        }
      }
    }
  };
  if (m * k * n < kParallelGrainFlops)
    rows(0, m);
  else
    core::parallel_for_blocked(0, m, rows);
}

void add_scalar(const float* pa, const float* pb, float* po, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
}

void mul_scalar(const float* pa, const float* pb, float* po, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
}

void scale_scalar(const float* pa, float s, float* po, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) po[i] = s * pa[i];
}

void relu_scalar(const float* pa, float* po, float* pm, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const bool pos = pa[i] > 0.0f;
    pm[i] = pos ? 1.0f : 0.0f;
    po[i] = pos ? pa[i] : 0.0f;
  }
}

void log_softmax_rows_scalar(const float* logits, float* out, std::int64_t n,
                             std::int64_t c) {
  // Rows are independent: parallel over disjoint row blocks.
  auto rows = [&](std::int64_t ib, std::int64_t ie) {
    for (std::int64_t i = ib; i < ie; ++i) {
      const float* row = logits + i * c;
      float* orow = out + i * c;
      const float mx = *std::max_element(row, row + c);
      double sum = 0.0;
      for (std::int64_t j = 0; j < c; ++j) sum += std::exp(row[j] - mx);
      const float lse = mx + static_cast<float>(std::log(sum));
      for (std::int64_t j = 0; j < c; ++j) orow[j] = row[j] - lse;
    }
  };
  if (n * c < 1 << 14)
    rows(0, n);
  else
    core::parallel_for_blocked(0, n, rows);
}

void abs_bits_scalar(const float* v, std::uint32_t* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i)
    out[i] = std::bit_cast<std::uint32_t>(v[i]) & 0x7fffffffu;
}

std::int64_t scan_abs_gt_scalar(const float* v, std::int64_t n,
                                std::uint32_t threshold, std::uint32_t* out) {
  std::int64_t cnt = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if ((std::bit_cast<std::uint32_t>(v[i]) & 0x7fffffffu) > threshold)
      out[cnt++] = static_cast<std::uint32_t>(i);
  }
  return cnt;
}

std::int64_t scan_abs_eq_scalar(const float* v, std::int64_t n,
                                std::uint32_t threshold, std::uint32_t* out,
                                std::int64_t max_out) {
  std::int64_t cnt = 0;
  for (std::int64_t i = 0; i < n && cnt < max_out; ++i) {
    if ((std::bit_cast<std::uint32_t>(v[i]) & 0x7fffffffu) == threshold)
      out[cnt++] = static_cast<std::uint32_t>(i);
  }
  return cnt;
}

void qsgd_ratios_scalar(const float* g, double norm, double s, double* out,
                        std::int64_t n) {
  // Operation order matches the historical QsgdCodec loop exactly:
  // float abs, exact promotion to double, divide, multiply.
  for (std::int64_t i = 0; i < n; ++i)
    out[i] = static_cast<double>(std::abs(g[i])) / norm * s;
}

void qsgd_unpack_scalar(const std::int8_t* levels, float scale, float denom,
                        float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i)
    out[i] = scale * static_cast<float>(levels[i]) / denom;
}

}  // namespace

const KernelTable& scalar_kernel_table() {
  static const KernelTable table = {
      /*matmul=*/matmul_scalar,
      /*matmul_tn=*/matmul_tn_scalar,
      /*matmul_nt=*/matmul_nt_scalar,
      /*add=*/add_scalar,
      /*mul=*/mul_scalar,
      /*scale=*/scale_scalar,
      /*relu=*/relu_scalar,
      /*log_softmax_rows=*/log_softmax_rows_scalar,
      /*abs_bits=*/abs_bits_scalar,
      /*scan_abs_gt=*/scan_abs_gt_scalar,
      /*scan_abs_eq=*/scan_abs_eq_scalar,
      /*qsgd_ratios=*/qsgd_ratios_scalar,
      /*qsgd_unpack=*/qsgd_unpack_scalar,
  };
  return table;
}

}  // namespace adafl::tensor
