#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/dispatch.h"

namespace adafl::tensor {

namespace {

void require_rank2(const Tensor& t, const char* who) {
  ADAFL_CHECK_MSG(t.shape().rank() == 2,
                  who << ": expected rank-2 tensor, got "
                      << t.shape().to_string());
}

// Validated (m, k, n) for each matmul flavor. The numeric kernels live in
// kernels_scalar.cpp / kernels_avx2.cpp behind the dispatch table; the entry
// points here keep all shape validation so every backend sees only valid
// inputs.
struct MatmulDims {
  std::int64_t m = 0, k = 0, n = 0;
};

MatmulDims matmul_dims(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul");
  require_rank2(b, "matmul");
  const std::int64_t m = a.shape()[0], k = a.shape()[1];
  ADAFL_CHECK_MSG(b.shape()[0] == k, "matmul: inner dims " << k << " vs "
                                                           << b.shape()[0]);
  return {m, k, b.shape()[1]};
}

MatmulDims matmul_tn_dims(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_tn");
  require_rank2(b, "matmul_tn");
  const std::int64_t k = a.shape()[0], m = a.shape()[1];
  ADAFL_CHECK_MSG(b.shape()[0] == k, "matmul_tn: inner dims " << k << " vs "
                                                              << b.shape()[0]);
  return {m, k, b.shape()[1]};
}

MatmulDims matmul_nt_dims(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_nt");
  require_rank2(b, "matmul_nt");
  const std::int64_t m = a.shape()[0], k = a.shape()[1];
  ADAFL_CHECK_MSG(b.shape()[1] == k, "matmul_nt: inner dims " << k << " vs "
                                                              << b.shape()[1]);
  return {m, k, b.shape()[0]};
}

void require_out_shape(const Tensor& c, const MatmulDims& d, const char* who) {
  ADAFL_CHECK_MSG(c.shape() == Shape({d.m, d.n}),
                  who << ": output shape " << c.shape().to_string()
                      << " vs expected [" << d.m << ", " << d.n << "]");
}

void require_out_span(std::span<float> c, const MatmulDims& d,
                      const char* who) {
  ADAFL_CHECK_MSG(static_cast<std::int64_t>(c.size()) == d.m * d.n,
                  who << ": output span size " << c.size() << " vs expected "
                      << d.m * d.n);
}

void require_same_shape(const Tensor& a, const Tensor& out, const char* who) {
  ADAFL_CHECK_MSG(out.shape() == a.shape(),
                  who << ": output shape " << out.shape().to_string() << " vs "
                      << a.shape().to_string());
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  const MatmulDims d = matmul_dims(a, b);
  Tensor c({d.m, d.n});
  active_kernels().matmul(a.data(), b.data(), c.data(), d.m, d.k, d.n);
  return c;
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& c) {
  const MatmulDims d = matmul_dims(a, b);
  require_out_shape(c, d, "matmul_into");
  active_kernels().matmul(a.data(), b.data(), c.data(), d.m, d.k, d.n);
}

void matmul_into(const Tensor& a, const Tensor& b, std::span<float> c) {
  const MatmulDims d = matmul_dims(a, b);
  require_out_span(c, d, "matmul_into");
  active_kernels().matmul(a.data(), b.data(), c.data(), d.m, d.k, d.n);
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  const MatmulDims d = matmul_tn_dims(a, b);
  Tensor c({d.m, d.n});
  active_kernels().matmul_tn(a.data(), b.data(), c.data(), d.m, d.k, d.n);
  return c;
}

void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& c) {
  const MatmulDims d = matmul_tn_dims(a, b);
  require_out_shape(c, d, "matmul_tn_into");
  active_kernels().matmul_tn(a.data(), b.data(), c.data(), d.m, d.k, d.n);
}

void matmul_tn_into(const Tensor& a, const Tensor& b, std::span<float> c) {
  const MatmulDims d = matmul_tn_dims(a, b);
  require_out_span(c, d, "matmul_tn_into");
  active_kernels().matmul_tn(a.data(), b.data(), c.data(), d.m, d.k, d.n);
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  const MatmulDims d = matmul_nt_dims(a, b);
  Tensor c({d.m, d.n});
  active_kernels().matmul_nt(a.data(), b.data(), c.data(), d.m, d.k, d.n);
  return c;
}

void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& c) {
  const MatmulDims d = matmul_nt_dims(a, b);
  require_out_shape(c, d, "matmul_nt_into");
  active_kernels().matmul_nt(a.data(), b.data(), c.data(), d.m, d.k, d.n);
}

void matmul_nt_into(const Tensor& a, const Tensor& b, std::span<float> c) {
  const MatmulDims d = matmul_nt_dims(a, b);
  require_out_span(c, d, "matmul_nt_into");
  active_kernels().matmul_nt(a.data(), b.data(), c.data(), d.m, d.k, d.n);
}

void add_into(const Tensor& a, const Tensor& b, Tensor& out) {
  ADAFL_CHECK_MSG(a.shape() == b.shape(),
                  "add_into: shape mismatch " << a.shape().to_string() << " vs "
                                              << b.shape().to_string());
  require_same_shape(a, out, "add_into");
  active_kernels().add(a.data(), b.data(), out.data(), a.size());
}

void mul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  ADAFL_CHECK_MSG(a.shape() == b.shape(),
                  "mul_into: shape mismatch " << a.shape().to_string() << " vs "
                                              << b.shape().to_string());
  require_same_shape(a, out, "mul_into");
  active_kernels().mul(a.data(), b.data(), out.data(), a.size());
}

void scale_into(const Tensor& a, float s, Tensor& out) {
  require_same_shape(a, out, "scale_into");
  active_kernels().scale(a.data(), s, out.data(), a.size());
}

void relu_into(const Tensor& a, Tensor& out, Tensor& mask) {
  require_same_shape(a, out, "relu_into");
  require_same_shape(a, mask, "relu_into(mask)");
  active_kernels().relu(a.data(), out.data(), mask.data(), a.size());
}

Tensor transpose2d(const Tensor& a) {
  require_rank2(a, "transpose2d");
  const std::int64_t m = a.shape()[0], n = a.shape()[1];
  Tensor t({n, m});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      t[j * m + i] = a[i * n + j];
  return t;
}

void im2col(std::span<const float> image, const Conv2dGeom& g, Tensor& cols) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  ADAFL_CHECK_MSG(
      cols.shape() == Shape({g.in_c * g.kernel * g.kernel, oh * ow}),
      "im2col: cols shape " << cols.shape().to_string());
  ADAFL_CHECK(static_cast<std::int64_t>(image.size()) ==
              g.in_c * g.in_h * g.in_w);
  float* out = cols.data();
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const float* img_c = image.data() + c * g.in_h * g.in_w;
    for (std::int64_t ki = 0; ki < g.kernel; ++ki) {
      for (std::int64_t kj = 0; kj < g.kernel; ++kj) {
        for (std::int64_t oi = 0; oi < oh; ++oi) {
          const std::int64_t ii = oi * g.stride + ki - g.pad;
          for (std::int64_t oj = 0; oj < ow; ++oj) {
            const std::int64_t jj = oj * g.stride + kj - g.pad;
            const bool inside =
                ii >= 0 && ii < g.in_h && jj >= 0 && jj < g.in_w;
            *out++ = inside ? img_c[ii * g.in_w + jj] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const Tensor& cols, const Conv2dGeom& g,
            std::span<float> image_grad) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  ADAFL_CHECK(cols.shape() == Shape({g.in_c * g.kernel * g.kernel, oh * ow}));
  ADAFL_CHECK(static_cast<std::int64_t>(image_grad.size()) ==
              g.in_c * g.in_h * g.in_w);
  const float* in = cols.data();
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    float* img_c = image_grad.data() + c * g.in_h * g.in_w;
    for (std::int64_t ki = 0; ki < g.kernel; ++ki) {
      for (std::int64_t kj = 0; kj < g.kernel; ++kj) {
        for (std::int64_t oi = 0; oi < oh; ++oi) {
          const std::int64_t ii = oi * g.stride + ki - g.pad;
          for (std::int64_t oj = 0; oj < ow; ++oj) {
            const std::int64_t jj = oj * g.stride + kj - g.pad;
            const float v = *in++;
            if (ii >= 0 && ii < g.in_h && jj >= 0 && jj < g.in_w)
              img_c[ii * g.in_w + jj] += v;
          }
        }
      }
    }
  }
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor p = log_softmax_rows(logits);
  for (auto& v : p.flat()) v = std::exp(v);
  return p;
}

Tensor log_softmax_rows(const Tensor& logits) {
  require_rank2(logits, "log_softmax_rows");
  Tensor out(logits.shape());
  log_softmax_rows_into(logits, out);
  return out;
}

void log_softmax_rows_into(const Tensor& logits, Tensor& out) {
  require_rank2(logits, "log_softmax_rows");
  const std::int64_t n = logits.shape()[0], c = logits.shape()[1];
  ADAFL_CHECK(c > 0);
  require_same_shape(logits, out, "log_softmax_rows_into");
  active_kernels().log_softmax_rows(logits.data(), out.data(), n, c);
}

}  // namespace adafl::tensor
