#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "core/parallel.h"

namespace adafl::tensor {

namespace {

void require_rank2(const Tensor& t, const char* who) {
  ADAFL_CHECK_MSG(t.shape().rank() == 2,
                  who << ": expected rank-2 tensor, got "
                      << t.shape().to_string());
}

// Matmuls below this many multiply-adds run serially: the fork-join
// overhead of the pool (~a few microseconds) dominates on small shapes.
// The threshold is a constant, so the serial/parallel decision — and with
// it every result — is independent of the configured thread count.
constexpr std::int64_t kParallelGrainFlops = 1 << 18;

// The raw kernels below are shared verbatim by the allocating entry points
// and their _into variants, so both paths are bitwise identical by
// construction.

// C[m,n] += A[m,k] * B[k,n]; pc must hold the starting values (zeros for a
// plain product).
void matmul_core(const float* pa, const float* pb, float* pc, std::int64_t m,
                 std::int64_t k, std::int64_t n) {
  // ikj loop order: unit-stride access on B and C. Parallel over disjoint
  // row blocks of C; each element accumulates in ascending-k order, so the
  // result is bitwise independent of the partitioning.
  auto rows = [&](std::int64_t ib, std::int64_t ie) {
    for (std::int64_t i = ib; i < ie; ++i) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = pa[i * k + kk];
        if (av == 0.0f) continue;
        const float* brow = pb + kk * n;
        float* crow = pc + i * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  };
  if (m * k * n < kParallelGrainFlops)
    rows(0, m);
  else
    core::parallel_for_blocked(0, m, rows);
}

// C[m,n] += A[k,m]^T * B[k,n]; pc must hold the starting values.
void matmul_tn_core(const float* pa, const float* pb, float* pc,
                    std::int64_t m, std::int64_t k, std::int64_t n) {
  // Row blocks of C are independent. Within a row, k ascends exactly as in
  // the historical kk-outer loop, so every element sums in the same order.
  auto rows = [&](std::int64_t ib, std::int64_t ie) {
    for (std::int64_t i = ib; i < ie; ++i) {
      float* crow = pc + i * n;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = pa[kk * m + i];
        if (av == 0.0f) continue;
        const float* brow = pb + kk * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  };
  if (m * k * n < kParallelGrainFlops)
    rows(0, m);
  else
    core::parallel_for_blocked(0, m, rows);
}

// C[m,n] = A[m,k] * B[n,k]^T; fully overwrites pc.
void matmul_nt_core(const float* pa, const float* pb, float* pc,
                    std::int64_t m, std::int64_t k, std::int64_t n) {
  // Cache-blocked dot-product kernel. B is walked in tiles of kBj rows so a
  // tile is served from cache for every row of the A block, and within a
  // tile four output columns accumulate in flight (independent double
  // accumulators -> instruction-level parallelism). Each element still sums
  // a_ik * b_jk in ascending-k order into one double, so the result is
  // bitwise identical to the naive triple loop at any block size or thread
  // count.
  constexpr std::int64_t kBj = 32;
  auto rows = [&](std::int64_t ib, std::int64_t ie) {
    for (std::int64_t jj = 0; jj < n; jj += kBj) {
      const std::int64_t je = std::min(jj + kBj, n);
      for (std::int64_t i = ib; i < ie; ++i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * n;
        std::int64_t j = jj;
        for (; j + 4 <= je; j += 4) {
          const float* b0 = pb + j * k;
          const float* b1 = b0 + k;
          const float* b2 = b1 + k;
          const float* b3 = b2 + k;
          double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
          for (std::int64_t kk = 0; kk < k; ++kk) {
            const double av = static_cast<double>(arow[kk]);
            a0 += av * static_cast<double>(b0[kk]);
            a1 += av * static_cast<double>(b1[kk]);
            a2 += av * static_cast<double>(b2[kk]);
            a3 += av * static_cast<double>(b3[kk]);
          }
          crow[j] = static_cast<float>(a0);
          crow[j + 1] = static_cast<float>(a1);
          crow[j + 2] = static_cast<float>(a2);
          crow[j + 3] = static_cast<float>(a3);
        }
        for (; j < je; ++j) {
          const float* brow = pb + j * k;
          double acc = 0.0;
          for (std::int64_t kk = 0; kk < k; ++kk)
            acc +=
                static_cast<double>(arow[kk]) * static_cast<double>(brow[kk]);
          crow[j] = static_cast<float>(acc);
        }
      }
    }
  };
  if (m * k * n < kParallelGrainFlops)
    rows(0, m);
  else
    core::parallel_for_blocked(0, m, rows);
}

// Validated (m, k, n) for each matmul flavor.
struct MatmulDims {
  std::int64_t m = 0, k = 0, n = 0;
};

MatmulDims matmul_dims(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul");
  require_rank2(b, "matmul");
  const std::int64_t m = a.shape()[0], k = a.shape()[1];
  ADAFL_CHECK_MSG(b.shape()[0] == k, "matmul: inner dims " << k << " vs "
                                                           << b.shape()[0]);
  return {m, k, b.shape()[1]};
}

MatmulDims matmul_tn_dims(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_tn");
  require_rank2(b, "matmul_tn");
  const std::int64_t k = a.shape()[0], m = a.shape()[1];
  ADAFL_CHECK_MSG(b.shape()[0] == k, "matmul_tn: inner dims " << k << " vs "
                                                              << b.shape()[0]);
  return {m, k, b.shape()[1]};
}

MatmulDims matmul_nt_dims(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_nt");
  require_rank2(b, "matmul_nt");
  const std::int64_t m = a.shape()[0], k = a.shape()[1];
  ADAFL_CHECK_MSG(b.shape()[1] == k, "matmul_nt: inner dims " << k << " vs "
                                                              << b.shape()[1]);
  return {m, k, b.shape()[0]};
}

void require_out_shape(const Tensor& c, const MatmulDims& d, const char* who) {
  ADAFL_CHECK_MSG(c.shape() == Shape({d.m, d.n}),
                  who << ": output shape " << c.shape().to_string()
                      << " vs expected [" << d.m << ", " << d.n << "]");
}

void require_out_span(std::span<float> c, const MatmulDims& d,
                      const char* who) {
  ADAFL_CHECK_MSG(static_cast<std::int64_t>(c.size()) == d.m * d.n,
                  who << ": output span size " << c.size() << " vs expected "
                      << d.m * d.n);
}

void require_same_shape(const Tensor& a, const Tensor& out, const char* who) {
  ADAFL_CHECK_MSG(out.shape() == a.shape(),
                  who << ": output shape " << out.shape().to_string() << " vs "
                      << a.shape().to_string());
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  const MatmulDims d = matmul_dims(a, b);
  Tensor c({d.m, d.n});
  matmul_core(a.data(), b.data(), c.data(), d.m, d.k, d.n);
  return c;
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& c) {
  const MatmulDims d = matmul_dims(a, b);
  require_out_shape(c, d, "matmul_into");
  matmul_core(a.data(), b.data(), c.data(), d.m, d.k, d.n);
}

void matmul_into(const Tensor& a, const Tensor& b, std::span<float> c) {
  const MatmulDims d = matmul_dims(a, b);
  require_out_span(c, d, "matmul_into");
  matmul_core(a.data(), b.data(), c.data(), d.m, d.k, d.n);
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  const MatmulDims d = matmul_tn_dims(a, b);
  Tensor c({d.m, d.n});
  matmul_tn_core(a.data(), b.data(), c.data(), d.m, d.k, d.n);
  return c;
}

void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& c) {
  const MatmulDims d = matmul_tn_dims(a, b);
  require_out_shape(c, d, "matmul_tn_into");
  matmul_tn_core(a.data(), b.data(), c.data(), d.m, d.k, d.n);
}

void matmul_tn_into(const Tensor& a, const Tensor& b, std::span<float> c) {
  const MatmulDims d = matmul_tn_dims(a, b);
  require_out_span(c, d, "matmul_tn_into");
  matmul_tn_core(a.data(), b.data(), c.data(), d.m, d.k, d.n);
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  const MatmulDims d = matmul_nt_dims(a, b);
  Tensor c({d.m, d.n});
  matmul_nt_core(a.data(), b.data(), c.data(), d.m, d.k, d.n);
  return c;
}

void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& c) {
  const MatmulDims d = matmul_nt_dims(a, b);
  require_out_shape(c, d, "matmul_nt_into");
  matmul_nt_core(a.data(), b.data(), c.data(), d.m, d.k, d.n);
}

void matmul_nt_into(const Tensor& a, const Tensor& b, std::span<float> c) {
  const MatmulDims d = matmul_nt_dims(a, b);
  require_out_span(c, d, "matmul_nt_into");
  matmul_nt_core(a.data(), b.data(), c.data(), d.m, d.k, d.n);
}

void add_into(const Tensor& a, const Tensor& b, Tensor& out) {
  ADAFL_CHECK_MSG(a.shape() == b.shape(),
                  "add_into: shape mismatch " << a.shape().to_string() << " vs "
                                              << b.shape().to_string());
  require_same_shape(a, out, "add_into");
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const std::int64_t n = a.size();
  for (std::int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
}

void mul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  ADAFL_CHECK_MSG(a.shape() == b.shape(),
                  "mul_into: shape mismatch " << a.shape().to_string() << " vs "
                                              << b.shape().to_string());
  require_same_shape(a, out, "mul_into");
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const std::int64_t n = a.size();
  for (std::int64_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
}

void scale_into(const Tensor& a, float s, Tensor& out) {
  require_same_shape(a, out, "scale_into");
  const float* pa = a.data();
  float* po = out.data();
  const std::int64_t n = a.size();
  for (std::int64_t i = 0; i < n; ++i) po[i] = s * pa[i];
}

void relu_into(const Tensor& a, Tensor& out, Tensor& mask) {
  require_same_shape(a, out, "relu_into");
  require_same_shape(a, mask, "relu_into(mask)");
  const float* pa = a.data();
  float* po = out.data();
  float* pm = mask.data();
  const std::int64_t n = a.size();
  for (std::int64_t i = 0; i < n; ++i) {
    const bool pos = pa[i] > 0.0f;
    pm[i] = pos ? 1.0f : 0.0f;
    po[i] = pos ? pa[i] : 0.0f;
  }
}

Tensor transpose2d(const Tensor& a) {
  require_rank2(a, "transpose2d");
  const std::int64_t m = a.shape()[0], n = a.shape()[1];
  Tensor t({n, m});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      t[j * m + i] = a[i * n + j];
  return t;
}

void im2col(std::span<const float> image, const Conv2dGeom& g, Tensor& cols) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  ADAFL_CHECK_MSG(
      cols.shape() == Shape({g.in_c * g.kernel * g.kernel, oh * ow}),
      "im2col: cols shape " << cols.shape().to_string());
  ADAFL_CHECK(static_cast<std::int64_t>(image.size()) ==
              g.in_c * g.in_h * g.in_w);
  float* out = cols.data();
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const float* img_c = image.data() + c * g.in_h * g.in_w;
    for (std::int64_t ki = 0; ki < g.kernel; ++ki) {
      for (std::int64_t kj = 0; kj < g.kernel; ++kj) {
        for (std::int64_t oi = 0; oi < oh; ++oi) {
          const std::int64_t ii = oi * g.stride + ki - g.pad;
          for (std::int64_t oj = 0; oj < ow; ++oj) {
            const std::int64_t jj = oj * g.stride + kj - g.pad;
            const bool inside =
                ii >= 0 && ii < g.in_h && jj >= 0 && jj < g.in_w;
            *out++ = inside ? img_c[ii * g.in_w + jj] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const Tensor& cols, const Conv2dGeom& g,
            std::span<float> image_grad) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  ADAFL_CHECK(cols.shape() == Shape({g.in_c * g.kernel * g.kernel, oh * ow}));
  ADAFL_CHECK(static_cast<std::int64_t>(image_grad.size()) ==
              g.in_c * g.in_h * g.in_w);
  const float* in = cols.data();
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    float* img_c = image_grad.data() + c * g.in_h * g.in_w;
    for (std::int64_t ki = 0; ki < g.kernel; ++ki) {
      for (std::int64_t kj = 0; kj < g.kernel; ++kj) {
        for (std::int64_t oi = 0; oi < oh; ++oi) {
          const std::int64_t ii = oi * g.stride + ki - g.pad;
          for (std::int64_t oj = 0; oj < ow; ++oj) {
            const std::int64_t jj = oj * g.stride + kj - g.pad;
            const float v = *in++;
            if (ii >= 0 && ii < g.in_h && jj >= 0 && jj < g.in_w)
              img_c[ii * g.in_w + jj] += v;
          }
        }
      }
    }
  }
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor p = log_softmax_rows(logits);
  for (auto& v : p.flat()) v = std::exp(v);
  return p;
}

Tensor log_softmax_rows(const Tensor& logits) {
  require_rank2(logits, "log_softmax_rows");
  Tensor out(logits.shape());
  log_softmax_rows_into(logits, out);
  return out;
}

void log_softmax_rows_into(const Tensor& logits, Tensor& out) {
  require_rank2(logits, "log_softmax_rows");
  const std::int64_t n = logits.shape()[0], c = logits.shape()[1];
  ADAFL_CHECK(c > 0);
  require_same_shape(logits, out, "log_softmax_rows_into");
  // Rows are independent: parallel over disjoint row blocks.
  auto rows = [&](std::int64_t ib, std::int64_t ie) {
    for (std::int64_t i = ib; i < ie; ++i) {
      const float* row = logits.data() + i * c;
      float* orow = out.data() + i * c;
      const float mx = *std::max_element(row, row + c);
      double sum = 0.0;
      for (std::int64_t j = 0; j < c; ++j) sum += std::exp(row[j] - mx);
      const float lse = mx + static_cast<float>(std::log(sum));
      for (std::int64_t j = 0; j < c; ++j) orow[j] = row[j] - lse;
    }
  };
  if (n * c < 1 << 14)
    rows(0, n);
  else
    core::parallel_for_blocked(0, n, rows);
}

}  // namespace adafl::tensor
