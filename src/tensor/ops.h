// Dense kernels shared by the nn/ layers: matmul, im2col/col2im, pooling,
// softmax. All tensors are row-major float32.
#pragma once

#include "tensor/tensor.h"

namespace adafl::tensor {

/// C[m,n] = A[m,k] * B[k,n]. Shapes are validated.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C[m,n] = A[k,m]^T * B[k,n] — A is consumed transposed (used in backward
/// passes; avoids materializing the transpose).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C[m,n] = A[m,k] * B[n,k]^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor transpose2d(const Tensor& a);

/// Geometry of a 2-D convolution / pooling window.
struct Conv2dGeom {
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::int64_t kernel = 1;   ///< square kernel size
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
};

/// im2col for one image: input [C,H,W] -> columns [C*k*k, out_h*out_w].
/// `cols` must already have that shape (reused across batch items).
void im2col(std::span<const float> image, const Conv2dGeom& g, Tensor& cols);

/// col2im: scatters gradient columns [C*k*k, out_h*out_w] back into an image
/// gradient [C,H,W] (accumulating).
void col2im(const Tensor& cols, const Conv2dGeom& g,
            std::span<float> image_grad);

/// Row-wise softmax of a [n, c] tensor.
Tensor softmax_rows(const Tensor& logits);

/// Row-wise log-softmax of a [n, c] tensor (numerically stable).
Tensor log_softmax_rows(const Tensor& logits);

}  // namespace adafl::tensor
