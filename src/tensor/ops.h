// Dense kernels shared by the nn/ layers: matmul, im2col/col2im, pooling,
// softmax. All tensors are row-major float32.
#pragma once

#include "tensor/tensor.h"

namespace adafl::tensor {

/// C[m,n] = A[m,k] * B[k,n]. Shapes are validated.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C[m,n] = A[k,m]^T * B[k,n] — A is consumed transposed (used in backward
/// passes; avoids materializing the transpose).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C[m,n] = A[m,k] * B[n,k]^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// ---- _into variants ----
// Each writes into caller-provided output storage whose shape must already
// match; the loop bodies are shared with the allocating wrappers above, so
// results are bitwise identical. matmul_into / matmul_tn_into ACCUMULATE
// into the output (the allocating forms start from a zero-initialized
// tensor), so the output must be zero-filled on entry — Workspace::get()
// and Tensor::resize() both hand it over that way. matmul_nt_into fully
// overwrites its output. The span overloads take a raw destination of
// exactly m*n floats (used for slices of a batched output tensor).

void matmul_into(const Tensor& a, const Tensor& b, Tensor& c);
void matmul_into(const Tensor& a, const Tensor& b, std::span<float> c);
void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& c);
void matmul_tn_into(const Tensor& a, const Tensor& b, std::span<float> c);
void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& c);
void matmul_nt_into(const Tensor& a, const Tensor& b, std::span<float> c);

// ---- Elementwise _into kernels (shapes must match exactly) ----

/// out[i] = a[i] + b[i].
void add_into(const Tensor& a, const Tensor& b, Tensor& out);
/// out[i] = a[i] * b[i] (Hadamard product).
void mul_into(const Tensor& a, const Tensor& b, Tensor& out);
/// out[i] = s * a[i].
void scale_into(const Tensor& a, float s, Tensor& out);
/// out[i] = max(a[i], 0); mask[i] = 1 if a[i] > 0 else 0.
void relu_into(const Tensor& a, Tensor& out, Tensor& mask);

/// Transpose of a rank-2 tensor.
Tensor transpose2d(const Tensor& a);

/// Geometry of a 2-D convolution / pooling window.
struct Conv2dGeom {
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::int64_t kernel = 1;   ///< square kernel size
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
};

/// im2col for one image: input [C,H,W] -> columns [C*k*k, out_h*out_w].
/// `cols` must already have that shape (reused across batch items).
void im2col(std::span<const float> image, const Conv2dGeom& g, Tensor& cols);

/// col2im: scatters gradient columns [C*k*k, out_h*out_w] back into an image
/// gradient [C,H,W] (accumulating).
void col2im(const Tensor& cols, const Conv2dGeom& g,
            std::span<float> image_grad);

/// Row-wise softmax of a [n, c] tensor.
Tensor softmax_rows(const Tensor& logits);

/// Row-wise log-softmax of a [n, c] tensor (numerically stable).
Tensor log_softmax_rows(const Tensor& logits);

/// log_softmax_rows into a caller-provided [n, c] output (fully overwritten;
/// bitwise identical to the allocating form).
void log_softmax_rows_into(const Tensor& logits, Tensor& out);

}  // namespace adafl::tensor
