// Deterministic, seedable random number generation for the whole project.
//
// Every stochastic component in adafl takes an explicit seed (no global RNG),
// so experiments are reproducible and repeats vary only the seed. The
// generator is xoshiro256** seeded via SplitMix64, both public-domain
// algorithms by Blackman & Vigna.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace adafl::tensor {

/// SplitMix64 — used to expand a single 64-bit seed into generator state and
/// to derive independent child seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Complete serializable Rng state: the four xoshiro256** words plus the
/// cached Box–Muller half. Round-tripping through Rng::state()/set_state()
/// resumes the stream exactly where it left off — crash-recovery
/// checkpoints persist these fields verbatim.
struct RngState {
  std::uint64_t s[4] = {};
  double cached = 0.0;
  bool has_cached = false;
};

/// xoshiro256** PRNG with convenience distributions. Copyable value type;
/// copies evolve independently.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x8AD4F1E5u) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire-style rejection-free mapping is fine here; bias is < 2^-53 for
    // the n values used in this project.
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(n));
  }

  /// Standard normal via Box–Muller (one value per call; cache unused half).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Gamma(alpha, 1) via Marsaglia–Tsang; used by the Dirichlet partitioner.
  double gamma(double alpha) {
    if (alpha < 1.0) {
      const double u = uniform();
      return gamma(alpha + 1.0) * std::pow(u, 1.0 / alpha);
    }
    const double d = alpha - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = 0.0;
      double v = 0.0;
      do {
        x = normal();
        v = 1.0 + c * x;
      } while (v <= 0.0);
      v = v * v * v;
      const double u = uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
    }
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Snapshot of the full generator state (for checkpoints).
  RngState state() const {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.cached = cached_;
    st.has_cached = has_cached_;
    return st;
  }

  /// Restores a state() snapshot; the stream continues bitwise from there.
  void set_state(const RngState& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    cached_ = st.cached;
    has_cached_ = st.has_cached;
  }

  /// Derives an independent child RNG; distinct streams for distinct tags.
  Rng fork(std::uint64_t tag) {
    SplitMix64 sm(next_u64() ^ (tag * 0x9E3779B97F4A7C15ULL + 0x1234ABCDULL));
    return Rng(sm.next());
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace adafl::tensor
