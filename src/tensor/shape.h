// Shape: the dimension list of a dense row-major tensor.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "tensor/check.h"

namespace adafl::tensor {

/// Immutable-ish list of tensor dimensions. All dimensions must be >= 0; a
/// rank-0 Shape denotes a scalar with numel() == 1.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  /// Number of dimensions.
  int rank() const { return static_cast<int>(dims_.size()); }

  /// Size along dimension `i`; negative `i` counts from the back.
  std::int64_t operator[](int i) const {
    const int r = rank();
    if (i < 0) i += r;
    ADAFL_CHECK_MSG(i >= 0 && i < r, "dim " << i << " out of rank " << r);
    return dims_[static_cast<std::size_t>(i)];
  }

  /// Total number of elements (product of dims; 1 for a scalar).
  std::int64_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(), std::int64_t{1},
                           std::multiplies<>());
  }

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Human-readable form, e.g. "[2, 3, 4]".
  std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  void validate() const {
    for (auto d : dims_)
      ADAFL_CHECK_MSG(d >= 0, "negative dimension in shape " << to_string());
  }

  std::vector<std::int64_t> dims_;
};

}  // namespace adafl::tensor
