#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "tensor/check.h"

namespace adafl::tensor {

namespace {
std::atomic<std::uint64_t> g_tensor_allocations{0};
}  // namespace

namespace detail {
void note_tensor_allocation(std::size_t /*bytes*/) noexcept {
  g_tensor_allocations.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

std::uint64_t tensor_allocations() noexcept {
  return g_tensor_allocations.load(std::memory_order_relaxed);
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(values.begin(), values.end()) {
  ADAFL_CHECK_MSG(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
                  "value count " << data_.size() << " does not match shape "
                                 << shape_.to_string());
}

void Tensor::resize(const Shape& shape) {
  shape_ = shape;
  data_.assign(static_cast<std::size_t>(shape_.numel()), 0.0f);
  ADAFL_DCHECK_ALIGNED32(data_.data());
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_)
    v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_)
    v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  ADAFL_CHECK_MSG(new_shape.numel() == shape_.numel(),
                  "reshape " << shape_.to_string() << " -> "
                             << new_shape.to_string() << " changes numel");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor& Tensor::operator+=(const Tensor& rhs) {
  ADAFL_CHECK_MSG(shape_ == rhs.shape_, "shape mismatch in += : "
                                            << shape_.to_string() << " vs "
                                            << rhs.shape_.to_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  ADAFL_CHECK_MSG(shape_ == rhs.shape_, "shape mismatch in -= : "
                                            << shape_.to_string() << " vs "
                                            << rhs.shape_.to_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

void Tensor::axpy(float alpha, const Tensor& rhs) {
  ADAFL_CHECK_MSG(shape_ == rhs.shape_, "shape mismatch in axpy: "
                                            << shape_.to_string() << " vs "
                                            << rhs.shape_.to_string());
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * rhs.data_[i];
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::min() const {
  ADAFL_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  ADAFL_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::l2_norm() const {
  return static_cast<float>(adafl::tensor::l2_norm(flat()));
}

std::int64_t Tensor::argmax() const {
  ADAFL_CHECK(!data_.empty());
  return static_cast<std::int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

std::size_t Tensor::offset(std::initializer_list<std::int64_t> idx) const {
  ADAFL_CHECK_MSG(static_cast<int>(idx.size()) == shape_.rank(),
                  "index rank " << idx.size() << " vs tensor rank "
                                << shape_.rank());
  std::size_t off = 0;
  int d = 0;
  for (std::int64_t i : idx) {
    const std::int64_t dim = shape_[d];
    ADAFL_CHECK_MSG(i >= 0 && i < dim,
                    "index " << i << " out of bounds for dim " << d << " ("
                             << dim << ")");
    off = off * static_cast<std::size_t>(dim) + static_cast<std::size_t>(i);
    ++d;
  }
  return off;
}

double dot(std::span<const float> a, std::span<const float> b) {
  ADAFL_CHECK_MSG(a.size() == b.size(),
                  "dot: length mismatch " << a.size() << " vs " << b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  return acc;
}

double l2_norm(std::span<const float> a) {
  double acc = 0.0;
  for (float v : a) acc += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(acc);
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  const double na = l2_norm(a);
  const double nb = l2_norm(b);
  constexpr double kEps = 1e-12;
  if (na < kEps || nb < kEps) return 0.0;
  return dot(a, b) / (na * nb);
}

}  // namespace adafl::tensor
