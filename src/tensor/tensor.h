// Tensor: dense, row-major, float32, value-semantic. The numerical substrate
// for the nn/, compress/, fl/ and core/ libraries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "tensor/rng.h"
#include "tensor/shape.h"

namespace adafl::tensor {

/// Alignment of all Tensor (and therefore Workspace) storage. 32 bytes = one
/// AVX2 vector, so SIMD kernels may assume the *start* of any tensor buffer
/// is vector-aligned (rows at arbitrary offsets still use unaligned loads).
inline constexpr std::size_t kTensorAlignment = 32;

namespace detail {

/// Bumps the process-wide tensor-allocation counter (defined in tensor.cpp).
void note_tensor_allocation(std::size_t bytes) noexcept;

/// Allocator for Tensor storage that counts every heap allocation, including
/// hidden vector growth, so tests can assert "zero allocations after warmup".
/// Deallocation is free; only allocate() pays the (relaxed) atomic increment.
template <typename T>
struct CountingAllocator {
  using value_type = T;

  CountingAllocator() noexcept = default;
  template <typename U>
  CountingAllocator(const CountingAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    note_tensor_allocation(n * sizeof(T));
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t(kTensorAlignment)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(kTensorAlignment));
  }

  friend bool operator==(const CountingAllocator&,
                         const CountingAllocator&) noexcept {
    return true;
  }
};

}  // namespace detail

/// Tensor storage type: float vector whose heap allocations are counted.
using FloatBuffer = std::vector<float, detail::CountingAllocator<float>>;

/// Process-wide count of tensor heap allocations since process start.
/// Monotonically increasing; sample before/after a region and subtract.
std::uint64_t tensor_allocations() noexcept;

/// Dense row-major float tensor with value semantics (copies copy storage).
/// Element access is bounds-checked through at(); hot loops should use
/// flat() / data() and do their own indexing.
class Tensor {
 public:
  /// Empty tensor: rank 0 *and* no storage; distinct from a scalar.
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), value) {}

  /// Copies `values`, which must have exactly shape.numel() elements.
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }

  /// I.i.d. N(mean, stddev) entries drawn from `rng`.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);

  /// I.i.d. U[lo, hi) entries drawn from `rng`.
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

  const Shape& shape() const { return shape_; }
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }
  /// Floats of heap storage currently reserved (>= size(); never shrinks).
  std::size_t capacity() const { return data_.capacity(); }

  /// Reshapes to `shape` and zero-fills, exactly like constructing
  /// Tensor(shape) — but reuses the existing storage, allocating only when
  /// the new numel exceeds capacity(). The workhorse of buffer reuse.
  void resize(const Shape& shape);

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  /// Bounds-checked multi-dimensional access; `idx` must have rank() entries.
  float& at(std::initializer_list<std::int64_t> idx) {
    return data_[offset(idx)];
  }
  float at(std::initializer_list<std::int64_t> idx) const {
    return data_[offset(idx)];
  }

  /// Unchecked linear access.
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  /// Returns a tensor viewing the same data with a new shape (same numel).
  Tensor reshaped(Shape new_shape) const;

  /// Sets every element to `v`.
  void fill(float v);

  // ---- In-place arithmetic (shapes must match exactly) ----
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(float s);

  /// this += alpha * rhs  (BLAS axpy).
  void axpy(float alpha, const Tensor& rhs);

  // ---- Reductions ----
  float sum() const;
  float min() const;
  float max() const;
  /// Euclidean (L2) norm of the flattened tensor.
  float l2_norm() const;
  /// Index of the maximum element (first on ties); precondition: non-empty.
  std::int64_t argmax() const;

 private:
  std::size_t offset(std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  FloatBuffer data_;
};

// ---- Free functions over flat float spans (shared by compress/, core/) ----

/// Dot product; spans must be the same length.
double dot(std::span<const float> a, std::span<const float> b);

/// L2 norm.
double l2_norm(std::span<const float> a);

/// Cosine similarity in [-1, 1]; returns 0 when either vector is ~zero.
double cosine_similarity(std::span<const float> a, std::span<const float> b);

}  // namespace adafl::tensor
