// Shared harness for the deployed-session tests: runs the same small AdaFL
// task through the in-process simulator (AdaFlSyncTrainer) and through
// ServerSession/ClientSession over a real Transport, so the two paths can be
// compared bitwise (same seed => identical global weights).
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cli/task.h"
#include "core/adafl_sync.h"
#include "fl/client.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "net/transport/event_loop.h"
#include "net/transport/faulty.h"
#include "net/transport/loopback.h"
#include "net/transport/session.h"
#include "net/transport/tcp.h"
#include "net/transport/udp.h"

namespace adafl::testutil {

/// A task small enough that a full deployed-vs-simulated double run stays
/// well under a second, yet non-trivial (non-iid split, selection pressure).
inline cli::TaskSpec small_task_spec() {
  cli::TaskSpec spec;
  spec.dataset = "mnist";
  spec.model = "mlp";
  spec.dist = "noniid";
  spec.clients = 4;
  spec.train_samples = 400;
  spec.test_samples = 120;
  spec.seed = 7;
  return spec;
}

inline fl::ClientTrainConfig small_client_config() {
  fl::ClientTrainConfig c;
  c.batch_size = 16;
  c.local_steps = 2;
  c.lr = 0.05f;
  return c;
}

inline core::AdaFlParams small_params() {
  core::AdaFlParams p;
  p.max_selected = 2;
  p.tau = 0.3;
  p.compression.warmup_rounds = 1;  // rounds >= 2 exercise real selection
  return p;
}

struct SimResult {
  fl::TrainLog log;
  std::vector<float> global;
  core::AdaFlStats stats;
};

inline SimResult run_simulator(const cli::TaskSpec& spec,
                               const fl::ClientTrainConfig& client,
                               const core::AdaFlParams& params, int rounds,
                               metrics::Tracer* tracer = nullptr) {
  auto task = cli::build_task(spec);
  core::AdaFlSyncConfig cfg;
  cfg.params = params;
  cfg.rounds = rounds;
  cfg.client = client;
  cfg.eval_every = 1;
  cfg.seed = spec.seed;
  cfg.tracer = tracer;
  core::AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts,
                           &task.test);
  SimResult r;
  r.log = t.run();
  r.global = t.global();
  r.stats = t.stats();
  return r;
}

struct DeployedResult {
  fl::TrainLog log;
  std::vector<float> global;
  core::AdaFlStats stats;
  std::vector<net::transport::ClientRunStats> clients;
};

inline net::transport::ServerSessionConfig make_server_config(
    const cli::TaskSpec& spec, const fl::ClientTrainConfig& client,
    const core::AdaFlParams& params, int rounds) {
  net::transport::ServerSessionConfig scfg;
  scfg.params = params;
  scfg.rounds = rounds;
  scfg.eval_every = 1;
  scfg.expected_clients = spec.clients;
  scfg.quorum = 0;  // all
  scfg.round_deadline = std::chrono::milliseconds(30000);
  scfg.idle_poll = std::chrono::milliseconds(2);
  scfg.client_config = cli::task_to_kv(spec, client);
  return scfg;
}

/// The standard deployed-client bootstrap: rebuild the task from the
/// server-sent kv config and derive the simulator-identical seed. `bundle`
/// must outlive the session (the FlClient borrows the training dataset).
inline net::transport::ClientSession::BootstrapFn make_bootstrap(
    std::optional<cli::TaskBundle>* bundle) {
  return [bundle](const std::map<std::string, std::string>& kv, int id,
                  const core::AdaFlParams&) {
    cli::TaskSpec spec;
    fl::ClientTrainConfig cc;
    cli::task_from_kv(kv, &spec, &cc);
    bundle->emplace(cli::build_task(spec));
    return fl::make_client(bundle->value().factory, &bundle->value().train,
                           bundle->value().parts, cc, {},
                           spec.seed ^ core::kAdaFlClientSeedSalt, id);
  };
}

/// Fast-turnaround client knobs for tests (real defaults are tuned for WAN).
inline net::transport::ClientSessionConfig test_client_config(int id) {
  net::transport::ClientSessionConfig ccfg;
  ccfg.client_id = id;
  ccfg.recv_poll = std::chrono::milliseconds(20);
  ccfg.heartbeat_interval = std::chrono::milliseconds(300);
  ccfg.liveness_timeout = std::chrono::milliseconds(2000);
  ccfg.backoff.initial = std::chrono::milliseconds(30);
  ccfg.backoff.max = std::chrono::milliseconds(100);
  ccfg.backoff.max_attempts = 30;
  return ccfg;
}

/// Per-client decorator for the client-side loopback transport, applied on
/// every (re)dial. Return the transport unchanged for a clean client, or
/// wrap it (e.g. in a FaultyTransport) to script a fault.
using TransportWrapFn = std::function<std::unique_ptr<net::transport::Transport>(
    int client_id, std::unique_ptr<net::transport::Transport>)>;

/// Full deployed run over in-process loopback transports: server in the
/// calling thread, one thread per client. `tracer` (not owned) is forwarded
/// to the ServerSession so the run emits the same semantic event stream as
/// the simulator plus deployed-only transport events.
inline DeployedResult run_deployed_loopback(const cli::TaskSpec& spec,
                                            const fl::ClientTrainConfig& client,
                                            const core::AdaFlParams& params,
                                            int rounds,
                                            metrics::Tracer* tracer = nullptr,
                                            TransportWrapFn wrap = nullptr) {
  using namespace net::transport;
  auto task = cli::build_task(spec);
  ServerSessionConfig scfg = make_server_config(spec, client, params, rounds);
  scfg.tracer = tracer;
  // Loopback is instant; nudge early so a scripted frame drop (wrap) is
  // retransmitted promptly. Clean runs never reach the nudge path.
  scfg.retransmit_nudge = std::chrono::milliseconds(100);
  ServerSession server(scfg, task.factory, &task.test);

  const int n = spec.clients;
  std::vector<std::optional<cli::TaskBundle>> bundles(
      static_cast<std::size_t>(n));
  DeployedResult res;
  res.clients.resize(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      ClientSession cs(
          test_client_config(id),
          [&server, &wrap, id]() -> std::unique_ptr<Transport> {
            auto pair = make_loopback_pair();
            server.add_transport(std::move(pair.first));
            std::unique_ptr<Transport> t = std::move(pair.second);
            if (wrap) t = wrap(id, std::move(t));
            return t;
          },
          make_bootstrap(&bundles[static_cast<std::size_t>(id)]));
      res.clients[static_cast<std::size_t>(id)] = cs.run();
    });
  }
  res.log = server.run();
  for (auto& t : threads) t.join();
  res.global = server.global();
  res.stats = server.stats();
  return res;
}

/// Per-client decorator for the client-side datagram link of a UDP loopback
/// run, applied on every (re)dial — wrap in a FaultyDatagramLink to script
/// packet loss/reorder below the FEC layer.
using DatagramWrapFn =
    std::function<std::unique_ptr<net::transport::DatagramLink>(
        int client_id, std::unique_ptr<net::transport::DatagramLink>)>;

/// Full deployed run over the FEC-coded datagram transport on in-process
/// loopback links: every frame is fragmented, Reed-Solomon-coded, and
/// reassembled exactly as over a real UDP socket, minus the kernel. Both
/// directions of each connection share `fec` (shape + hooks); `server_stats`,
/// when given, overrides the stats sink for the server-side endpoints so
/// tests can assert on repairs seen by the server alone.
inline DeployedResult run_deployed_udp_loopback(
    const cli::TaskSpec& spec, const fl::ClientTrainConfig& client,
    const core::AdaFlParams& params, int rounds,
    const net::transport::UdpFecConfig& fec,
    metrics::Tracer* tracer = nullptr, DatagramWrapFn dwrap = nullptr,
    net::transport::FecStats* server_stats = nullptr,
    std::chrono::milliseconds nudge = std::chrono::milliseconds(300)) {
  using namespace net::transport;
  auto task = cli::build_task(spec);
  ServerSessionConfig scfg = make_server_config(spec, client, params, rounds);
  scfg.tracer = tracer;
  scfg.retransmit_nudge = nudge;
  ServerSession server(scfg, task.factory, &task.test);

  UdpFecConfig server_fec = fec;
  if (server_stats != nullptr) server_fec.stats = server_stats;

  const int n = spec.clients;
  std::vector<std::optional<cli::TaskBundle>> bundles(
      static_cast<std::size_t>(n));
  DeployedResult res;
  res.clients.resize(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      ClientSession cs(
          test_client_config(id),
          [&server, &server_fec, &fec, &dwrap,
           id]() -> std::unique_ptr<Transport> {
            auto [a, b] = make_datagram_loopback_pair();
            server.add_transport(
                std::make_unique<UdpTransport>(std::move(a), server_fec));
            std::unique_ptr<DatagramLink> link = std::move(b);
            if (dwrap) link = dwrap(id, std::move(link));
            return std::make_unique<UdpTransport>(std::move(link), fec);
          },
          make_bootstrap(&bundles[static_cast<std::size_t>(id)]));
      res.clients[static_cast<std::size_t>(id)] = cs.run();
    });
  }
  res.log = server.run();
  for (auto& t : threads) t.join();
  res.global = server.global();
  res.stats = server.stats();
  return res;
}

/// Full deployed run over real TCP on 127.0.0.1 (ephemeral port), with an
/// accept loop like flserver's. Optionally injects a crash fault into one
/// client (it abruptly drops its connection on `crash_round`'s MODEL).
inline DeployedResult run_deployed_tcp(
    const cli::TaskSpec& spec, const fl::ClientTrainConfig& client,
    const core::AdaFlParams& params, int rounds, int quorum = 0,
    std::chrono::milliseconds deadline = std::chrono::milliseconds(30000),
    int crash_client = -1, int crash_round = 0) {
  using namespace net::transport;
  auto task = cli::build_task(spec);
  ServerSessionConfig scfg = make_server_config(spec, client, params, rounds);
  scfg.quorum = quorum;
  scfg.round_deadline = deadline;
  ServerSession server(scfg, task.factory, &task.test);

  TcpListener listener(0);
  const std::uint16_t port = listener.port();
  std::atomic<bool> done{false};
  std::thread acceptor([&] {
    while (!done.load()) {
      auto t = listener.accept(std::chrono::milliseconds(50));
      if (t) server.add_transport(std::move(t));
    }
  });

  const int n = spec.clients;
  std::vector<std::optional<cli::TaskBundle>> bundles(
      static_cast<std::size_t>(n));
  DeployedResult res;
  res.clients.resize(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      ClientSessionConfig ccfg = test_client_config(id);
      // The crash is injected at the transport layer: FaultyTransport severs
      // the first connection on `crash_round`'s MODEL, and the shared flag
      // keeps redialed connections clean so it fires exactly once.
      auto crash_fired = std::make_shared<std::atomic<bool>>(false);
      const bool crashes = id == crash_client && crash_round > 0;
      if (crashes) {
        // Redial almost immediately: on this tiny task the server burns
        // through rounds in milliseconds, and the test needs the rejoin to
        // land while the session is still running.
        ccfg.backoff.initial = std::chrono::milliseconds(1);
        ccfg.backoff.max = std::chrono::milliseconds(50);
      }
      ClientSession cs(
          ccfg,
          [port, crashes, crash_round,
           crash_fired]() -> std::unique_ptr<Transport> {
            auto t = TcpTransport::connect("127.0.0.1", port,
                                           std::chrono::milliseconds(1000));
            if (!t || !crashes || crash_fired->load()) return t;
            FaultPlan plan;
            plan.sever_on_recv(MsgType::kModel, crash_round);
            auto faulty = std::make_unique<FaultyTransport>(std::move(t),
                                                            std::move(plan));
            faulty->set_on_fault([crash_fired](const FaultRule&,
                                               const Frame&) {
              crash_fired->store(true);
            });
            return faulty;
          },
          make_bootstrap(&bundles[static_cast<std::size_t>(id)]));
      res.clients[static_cast<std::size_t>(id)] = cs.run();
    });
  }

  res.log = server.run();
  done.store(true);
  listener.close();
  acceptor.join();
  for (auto& t : threads) t.join();
  res.global = server.global();
  res.stats = server.stats();
  return res;
}

/// Full deployed run over real TCP on 127.0.0.1 driven by the epoll event
/// loop (the flserver production path): the loop owns the listening fd and
/// every accepted socket, and the session runs in loop mode
/// (attach_event_loop) with sharded parallel UPDATE decode. Mirrors
/// run_deployed_tcp's crash-injection knobs so the rejoin/catch-up paths get
/// exercised through the loop handshake.
inline DeployedResult run_deployed_event_loop(
    const cli::TaskSpec& spec, const fl::ClientTrainConfig& client,
    const core::AdaFlParams& params, int rounds,
    const net::transport::EventLoopConfig& lcfg =
        net::transport::EventLoopConfig{},
    metrics::Tracer* tracer = nullptr, int quorum = 0,
    std::chrono::milliseconds deadline = std::chrono::milliseconds(30000),
    int crash_client = -1, int crash_round = 0,
    metrics::Registry* registry = nullptr) {
  using namespace net::transport;
  auto task = cli::build_task(spec);
  ServerSessionConfig scfg = make_server_config(spec, client, params, rounds);
  scfg.tracer = tracer;
  scfg.registry = registry;
  scfg.quorum = quorum;
  scfg.round_deadline = deadline;
  ServerSession server(scfg, task.factory, &task.test);

  TcpListener listener(0);
  const std::uint16_t port = listener.port();
  // Declared after the session so it is destroyed (loop thread stopped)
  // before the session members it feeds — same ordering as flserver.
  EventLoop loop(lcfg);
  loop.adopt_listener(listener.fd());
  server.attach_event_loop(&loop);  // run() starts and stops the loop

  const int n = spec.clients;
  std::vector<std::optional<cli::TaskBundle>> bundles(
      static_cast<std::size_t>(n));
  DeployedResult res;
  res.clients.resize(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      ClientSessionConfig ccfg = test_client_config(id);
      auto crash_fired = std::make_shared<std::atomic<bool>>(false);
      const bool crashes = id == crash_client && crash_round > 0;
      if (crashes) {
        ccfg.backoff.initial = std::chrono::milliseconds(1);
        ccfg.backoff.max = std::chrono::milliseconds(50);
      }
      ClientSession cs(
          ccfg,
          [port, crashes, crash_round,
           crash_fired]() -> std::unique_ptr<Transport> {
            auto t = TcpTransport::connect("127.0.0.1", port,
                                           std::chrono::milliseconds(1000));
            if (!t || !crashes || crash_fired->load()) return t;
            FaultPlan plan;
            plan.sever_on_recv(MsgType::kModel, crash_round);
            auto faulty = std::make_unique<FaultyTransport>(std::move(t),
                                                            std::move(plan));
            faulty->set_on_fault([crash_fired](const FaultRule&,
                                               const Frame&) {
              crash_fired->store(true);
            });
            return faulty;
          },
          make_bootstrap(&bundles[static_cast<std::size_t>(id)]));
      res.clients[static_cast<std::size_t>(id)] = cs.run();
    });
  }

  res.log = server.run();
  listener.close();
  for (auto& t : threads) t.join();
  res.global = server.global();
  res.stats = server.stats();
  return res;
}

}  // namespace adafl::testutil
