// Shared miniature FL task used by the trainer tests: a small synthetic
// dataset + MLP, sized so a full run finishes in well under a second.
#pragma once

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"

namespace adafl::fl::testing {

struct MiniTask {
  data::Dataset train;
  data::Dataset test;
  data::Partition parts;
  nn::ModelFactory factory;
  ClientTrainConfig client;
};

/// 8x8 single-channel, 4 classes, `clients` partitions (IID by default).
inline MiniTask make_mini_task(int clients = 4, bool iid = true,
                               std::uint64_t seed = 1) {
  data::SyntheticConfig cfg;
  cfg.spec = {1, 8, 8, 4};
  cfg.num_samples = 160;
  cfg.noise_stddev = 0.3;
  cfg.max_shift = 1;
  cfg.proto_seed = 77;
  cfg.seed = seed;
  MiniTask t{data::make_synthetic(cfg), data::Dataset{}, {}, nullptr, {}};
  auto test_cfg = cfg;
  test_cfg.num_samples = 80;
  test_cfg.seed = seed + 1000;
  t.test = data::make_synthetic(test_cfg);
  tensor::Rng rng(seed + 7);
  t.parts = iid ? data::partition_iid(t.train.size(), clients, rng)
                : data::partition_shards(t.train.labels(), clients, 2, rng);
  t.factory = nn::mlp_factory(cfg.spec, 24, seed + 3);
  t.client.batch_size = 10;
  t.client.local_steps = 4;
  t.client.lr = 0.1f;
  return t;
}

}  // namespace adafl::fl::testing
