// Numerical gradient checking helper shared by the layer tests.
//
// For a layer f and random probe weights w, define L(x, theta) =
// <f(x; theta), w>. Then dL/dOut = w, so backward(w) must match central
// finite differences of L with respect to x (and each parameter).
#pragma once

#include <gtest/gtest.h>

#include "nn/layer.h"

namespace adafl::nn::testing {

struct GradCheckOptions {
  float eps = 1e-2f;       ///< finite-difference step (float32-friendly)
  float tol = 2e-2f;       ///< absolute+relative mixed tolerance
  int max_probes = 40;     ///< coordinates checked per tensor (stride-sampled)
};

inline void expect_grad_near(float analytic, float numeric, float tol,
                             const std::string& what, std::size_t idx) {
  const float scale = std::max({1.0f, std::abs(analytic), std::abs(numeric)});
  EXPECT_NEAR(analytic, numeric, tol * scale)
      << what << " gradient mismatch at flat index " << idx;
}

/// Checks dL/dx and dL/dtheta for a single layer on input `x`.
inline void check_layer_gradients(Layer& layer, tensor::Tensor x,
                                  std::uint64_t seed,
                                  GradCheckOptions opt = {}) {
  tensor::Rng rng(seed);

  auto loss_of = [&](const tensor::Tensor& probe,
                     const tensor::Tensor& input) {
    // Deterministic layers only: forward in training mode must be pure.
    tensor::Tensor out = layer.forward(input, /*training=*/true);
    return static_cast<float>(tensor::dot(out.flat(), probe.flat()));
  };

  // Build the probe from the output shape.
  tensor::Tensor out0 = layer.forward(x, true);
  tensor::Tensor probe = tensor::Tensor::randn(out0.shape(), rng);

  // Analytic gradients.
  std::vector<ParamRef> params;
  layer.collect_params(params);
  for (auto& p : params) p.grad->fill(0.0f);
  layer.forward(x, true);
  tensor::Tensor dx = layer.backward(probe);
  ASSERT_EQ(dx.shape(), x.shape());

  // Numeric dL/dx.
  {
    const std::int64_t n = x.size();
    const std::int64_t stride =
        std::max<std::int64_t>(1, n / opt.max_probes);
    for (std::int64_t i = 0; i < n; i += stride) {
      tensor::Tensor xp = x, xm = x;
      xp[i] += opt.eps;
      xm[i] -= opt.eps;
      const float num =
          (loss_of(probe, xp) - loss_of(probe, xm)) / (2.0f * opt.eps);
      expect_grad_near(dx[i], num, opt.tol, "input",
                       static_cast<std::size_t>(i));
    }
  }

  // Numeric dL/dtheta for every parameter tensor.
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto w = params[pi].value->flat();
    const auto g = params[pi].grad->flat();
    const std::size_t n = w.size();
    const std::size_t stride =
        std::max<std::size_t>(1, n / static_cast<std::size_t>(opt.max_probes));
    for (std::size_t i = 0; i < n; i += stride) {
      const float orig = w[i];
      w[i] = orig + opt.eps;
      const float lp = loss_of(probe, x);
      w[i] = orig - opt.eps;
      const float lm = loss_of(probe, x);
      w[i] = orig;
      const float num = (lp - lm) / (2.0f * opt.eps);
      expect_grad_near(g[i], num, opt.tol,
                       "param[" + std::to_string(pi) + "]", i);
    }
  }
}

}  // namespace adafl::nn::testing
