#include <gtest/gtest.h>

#include "core/adafl_async.h"
#include "core/adafl_sync.h"
#include "fl/sync_trainer.h"
#include "fl_fixtures.h"

namespace adafl::core {
namespace {

using fl::testing::make_mini_task;

AdaFlSyncConfig sync_config(const fl::testing::MiniTask& task, int rounds) {
  AdaFlSyncConfig cfg;
  cfg.rounds = rounds;
  cfg.client = task.client;
  cfg.seed = 5;
  cfg.params.max_selected = 2;
  cfg.params.compression.warmup_rounds = 3;
  cfg.params.compression.ratio_max = 32.0;
  return cfg;
}

TEST(AdaFlSync, LearnsAboveChance) {
  auto task = make_mini_task();
  AdaFlSyncTrainer t(sync_config(task, 20), task.factory, &task.train,
                     task.parts, &task.test);
  auto log = t.run();
  EXPECT_GT(log.final_accuracy(), 0.5);
}

TEST(AdaFlSync, WarmupHasFullParticipation) {
  auto task = make_mini_task(4);
  auto cfg = sync_config(task, 3);  // all rounds inside warm-up
  AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  EXPECT_EQ(log.ledger.delivered_updates(), 3 * 4);
  // During warm-up everyone compresses at ratio_min.
  EXPECT_DOUBLE_EQ(t.stats().min_ratio_used, cfg.params.compression.ratio_min);
  EXPECT_DOUBLE_EQ(t.stats().max_ratio_used, cfg.params.compression.ratio_min);
}

TEST(AdaFlSync, SelectionCapsParticipationAfterWarmup) {
  auto task = make_mini_task(4);
  auto cfg = sync_config(task, 10);
  cfg.params.max_selected = 2;
  AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  // Warm-up: 3 rounds x 4 clients; after: at most 2 per round.
  EXPECT_LE(log.ledger.delivered_updates(), 3 * 4 + 7 * 2);
  EXPECT_GT(t.stats().skipped_clients, 0);
}

TEST(AdaFlSync, CompressionRatiosStayWithinBounds) {
  auto task = make_mini_task(4);
  auto cfg = sync_config(task, 12);
  AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  t.run();
  EXPECT_GE(t.stats().min_ratio_used, cfg.params.compression.ratio_min);
  EXPECT_LE(t.stats().max_ratio_used, cfg.params.compression.ratio_max);
}

TEST(AdaFlSync, UploadsFarCheaperThanDense) {
  auto task = make_mini_task(4);
  auto cfg = sync_config(task, 12);
  AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  const auto dense_equivalent =
      log.ledger.delivered_updates() * log.dense_update_bytes;
  EXPECT_LT(log.ledger.total_upload_bytes(), dense_equivalent / 2);
}

TEST(AdaFlSync, DeterministicUnderSeed) {
  auto task = make_mini_task();
  auto cfg = sync_config(task, 6);
  auto run = [&] {
    AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
    return t.run();
  };
  auto a = run();
  auto b = run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i)
    EXPECT_EQ(a.records[i].test_accuracy, b.records[i].test_accuracy);
  EXPECT_EQ(a.ledger.total_upload_bytes(), b.ledger.total_upload_bytes());
}

TEST(AdaFlSync, MeanSelectedTracksK) {
  auto task = make_mini_task(4);
  auto cfg = sync_config(task, 20);
  cfg.params.max_selected = 2;
  cfg.params.tau = 0.0;  // no threshold filtering
  AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  t.run();
  // 3 warm-up rounds of 4 + 17 rounds of 2 = (12 + 34) / 20 = 2.3.
  EXPECT_NEAR(t.stats().mean_selected_per_round, 2.3, 1e-9);
}

TEST(AdaFlSync, HighTauStallsSelection) {
  auto task = make_mini_task(4);
  auto cfg = sync_config(task, 8);
  cfg.params.tau = 1.0;  // nothing passes after warm-up
  AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  EXPECT_EQ(log.ledger.delivered_updates(), 3 * 4);  // warm-up only
}

TEST(AdaFlSync, InvalidConfigThrows) {
  auto task = make_mini_task(2);
  auto cfg = sync_config(task, 0);
  EXPECT_THROW(AdaFlSyncTrainer(cfg, task.factory, &task.train, task.parts,
                                &task.test),
               CheckError);
}

AdaFlAsyncConfig async_config(const fl::testing::MiniTask& task) {
  AdaFlAsyncConfig cfg;
  cfg.duration = 6.0;
  cfg.eval_interval = 1.0;
  cfg.client = task.client;
  cfg.seed = 5;
  cfg.params.compression.warmup_rounds = 2;
  cfg.params.compression.ratio_max = 32.0;
  return cfg;
}

TEST(AdaFlAsync, LearnsAboveChance) {
  auto task = make_mini_task();
  AdaFlAsyncTrainer t(async_config(task), task.factory, &task.train,
                      task.parts, &task.test);
  auto log = t.run();
  EXPECT_GT(log.final_accuracy(), 0.5);
  EXPECT_GT(log.ledger.delivered_updates(), 0);
}

TEST(AdaFlAsync, CompressedUploadsAreSmall) {
  auto task = make_mini_task();
  AdaFlAsyncTrainer t(async_config(task), task.factory, &task.train,
                      task.parts, &task.test);
  auto log = t.run();
  EXPECT_LT(log.ledger.max_update_bytes(), log.dense_update_bytes);
}

TEST(AdaFlAsync, HighTauSkipsUploads) {
  auto task = make_mini_task();
  auto cfg = async_config(task);
  cfg.params.tau = 1.0;
  cfg.duration = 3.0;
  AdaFlAsyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  t.run();
  EXPECT_GT(t.stats().skipped_clients, 0);
}

TEST(AdaFlAsync, DeterministicUnderSeed) {
  auto task = make_mini_task();
  auto cfg = async_config(task);
  cfg.duration = 2.0;
  auto run = [&] {
    AdaFlAsyncTrainer t(cfg, task.factory, &task.train, task.parts,
                        &task.test);
    return t.run();
  };
  auto a = run();
  auto b = run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i)
    EXPECT_EQ(a.records[i].test_accuracy, b.records[i].test_accuracy);
}

TEST(AdaFlAsync, MaxUpdatesCapRespected) {
  auto task = make_mini_task();
  auto cfg = async_config(task);
  cfg.max_updates = 5;
  AdaFlAsyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  EXPECT_EQ(log.applied_updates, 5);
}

}  // namespace
}  // namespace adafl::core
