// Integration: AdaFL's bandwidth-aware behaviour on simulated networks.
#include <gtest/gtest.h>

#include "core/adafl_sync.h"
#include "fl_fixtures.h"

namespace adafl::core {
namespace {

using fl::testing::make_mini_task;

AdaFlSyncConfig config_with_links(const fl::testing::MiniTask& task,
                                  std::vector<net::LinkConfig> links) {
  AdaFlSyncConfig cfg;
  cfg.rounds = 12;
  cfg.client = task.client;
  cfg.links = std::move(links);
  cfg.eval_every = 12;
  cfg.seed = 5;
  cfg.params.max_selected = 2;
  cfg.params.compression.warmup_rounds = 2;
  cfg.params.compression.ratio_max = 32.0;
  return cfg;
}

TEST(AdaFlNetwork, CongestedClientsUploadFewerBytes) {
  auto task = make_mini_task(4);
  // Clients 0,1 congested; 2,3 good.
  auto cfg = config_with_links(
      task, net::make_fleet(4, 0.5, net::LinkQuality::kGood,
                            net::LinkQuality::kCongested));
  // Make the bandwidth term decisive.
  cfg.params.utility.w_sim = 0.2;
  cfg.params.utility.w_bw = 0.8;
  AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  const auto congested =
      log.ledger.upload_bytes_of(0) + log.ledger.upload_bytes_of(1);
  const auto good =
      log.ledger.upload_bytes_of(2) + log.ledger.upload_bytes_of(3);
  EXPECT_LT(congested, good);
}

TEST(AdaFlNetwork, UtilityScoreSeesLiveBandwidth) {
  // A congested client's score must be strictly below an identical client
  // on a good link when only bandwidth differs.
  UtilityConfig cfg;
  std::vector<float> g{1.0f, 0.0f}, ghat{1.0f, 0.0f};
  const auto good = net::preset(net::LinkQuality::kGood);
  const auto bad = net::preset(net::LinkQuality::kCongested);
  EXPECT_GT(utility_score(cfg, g, ghat, good.up_bw, good.down_bw),
            utility_score(cfg, g, ghat, bad.up_bw, bad.down_bw));
}

TEST(AdaFlNetwork, SimulatedTimeBeatsDenseFedAvgOnSameNetwork) {
  auto task = make_mini_task(4);
  const auto links = net::make_fleet(4, 0.5, net::LinkQuality::kGood,
                                     net::LinkQuality::kCongested);
  // Dense FedAvg on the constrained network.
  fl::SyncConfig avg;
  avg.algo = fl::Algorithm::kFedAvg;
  avg.rounds = 12;
  avg.participation = 1.0;
  avg.client = task.client;
  avg.links = links;
  avg.eval_every = 12;
  avg.seed = 5;
  fl::SyncTrainer fedavg(avg, task.factory, &task.train, task.parts,
                         &task.test);
  const double t_avg = fedavg.run().total_time;
  // AdaFL on the identical network.
  auto cfg = config_with_links(task, links);
  AdaFlSyncTrainer ada(cfg, task.factory, &task.train, task.parts,
                       &task.test);
  const double t_ada = ada.run().total_time;
  EXPECT_LT(t_ada, t_avg);
}

TEST(AdaFlNetwork, LossyLinksLoseSomeUpdates) {
  auto task = make_mini_task(4);
  auto cfg = config_with_links(
      task, net::make_fleet(4, 1.0, net::LinkQuality::kGood,
                            net::LinkQuality::kLossy));
  cfg.rounds = 20;
  AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  EXPECT_LT(log.ledger.delivered_updates(), log.ledger.attempted_updates());
}

}  // namespace
}  // namespace adafl::core
