#include "tensor/arena.h"

#include <gtest/gtest.h>

namespace adafl::tensor {
namespace {

TEST(Arena, GetReturnsShapedZeroFilledTensor) {
  Workspace ws;
  Tensor& t = ws.get({2, 3});
  EXPECT_EQ(t.shape(), Shape({2, 3}));
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Arena, GetZeroFillsLikeFreshTensor) {
  // Reused slots must be indistinguishable from a freshly constructed
  // Tensor(shape): dirty data from the previous cycle may not leak.
  Workspace ws;
  const Workspace::Mark m = ws.mark();
  Tensor& a = ws.get({4});
  a.flat()[0] = 42.0f;
  a.flat()[3] = -1.0f;
  ws.rewind(m);
  Tensor& b = ws.get({4});
  EXPECT_EQ(&a, &b);  // same slot...
  for (float v : b.flat()) EXPECT_EQ(v, 0.0f);  // ...but clean
}

TEST(Arena, RewindRecyclesSlotsWithoutAllocation) {
  Workspace ws;
  // Warmup cycle: grows three slots.
  const Workspace::Mark m = ws.mark();
  ws.get({8, 8});
  ws.get({16});
  ws.get({4, 4, 4});
  ws.rewind(m);
  const std::uint64_t warm_allocs = ws.stats().allocations;
  EXPECT_EQ(warm_allocs, 3u);

  // Steady state: identical call sequence, zero new allocations.
  for (int cycle = 0; cycle < 5; ++cycle) {
    const Workspace::Mark mm = ws.mark();
    ws.get({8, 8});
    ws.get({16});
    ws.get({4, 4, 4});
    ws.rewind(mm);
  }
  EXPECT_EQ(ws.stats().allocations, warm_allocs);
  EXPECT_EQ(ws.stats().requests, 18u);
  EXPECT_EQ(ws.slot_count(), 3u);
}

TEST(Arena, SmallerShapeReusesCapacity) {
  Workspace ws;
  const Workspace::Mark m = ws.mark();
  ws.get({100});
  ws.rewind(m);
  ws.get({60});  // fits in the reserved 100 floats
  EXPECT_EQ(ws.stats().allocations, 1u);
  EXPECT_GE(ws.floats_reserved(), 100u);
}

TEST(Arena, GrowingShapeCountsAllocation) {
  Workspace ws;
  const Workspace::Mark m = ws.mark();
  ws.get({10});
  ws.rewind(m);
  ws.get({200});
  EXPECT_EQ(ws.stats().allocations, 2u);
}

TEST(Arena, ReferencesStayValidAcrossSlotTableGrowth) {
  Workspace ws;
  Tensor& first = ws.get({3});
  first.flat()[1] = 7.0f;
  // Force the slot table itself to reallocate many times over.
  for (int i = 0; i < 100; ++i) ws.get({2});
  EXPECT_EQ(first.flat()[1], 7.0f);
  EXPECT_EQ(first.shape(), Shape({3}));
}

TEST(Arena, NestedMarkRewind) {
  Workspace ws;
  const Workspace::Mark outer = ws.mark();
  ws.get({4});
  const Workspace::Mark inner = ws.mark();
  ws.get({4});
  ws.get({4});
  EXPECT_EQ(ws.stats().high_water_slots, 3u);
  ws.rewind(inner);
  ws.get({4});  // reuses slot 1
  EXPECT_EQ(ws.stats().high_water_slots, 3u);
  ws.rewind(outer);
  EXPECT_EQ(ws.slot_count(), 3u);
  EXPECT_EQ(ws.stats().allocations, 3u);
}

TEST(Arena, HighWaterTracksDeepestCycle) {
  Workspace ws;
  const Workspace::Mark m = ws.mark();
  ws.get({2});
  ws.rewind(m);
  ws.get({2});
  ws.get({2});
  ws.get({2});
  EXPECT_EQ(ws.stats().high_water_slots, 3u);
}

TEST(Arena, ClearDropsStorage) {
  Workspace ws;
  ws.get({64});
  EXPECT_GT(ws.floats_reserved(), 0u);
  ws.clear();
  EXPECT_EQ(ws.slot_count(), 0u);
  EXPECT_EQ(ws.floats_reserved(), 0u);
}

TEST(Arena, ProcessAllocationCounterIsMonotonic) {
  const std::uint64_t before = tensor_allocations();
  { Tensor t({32, 32}); }
  const std::uint64_t after = tensor_allocations();
  EXPECT_GT(after, before);
  // Workspace steady-state reuse must not move the process counter.
  Workspace ws;
  const Workspace::Mark m = ws.mark();
  ws.get({16});
  ws.rewind(m);
  const std::uint64_t warm = tensor_allocations();
  const Workspace::Mark m2 = ws.mark();
  ws.get({16});
  ws.rewind(m2);
  EXPECT_EQ(tensor_allocations(), warm);
}

TEST(Arena, TensorResizeReusesCapacity) {
  Tensor t({100});
  const std::uint64_t after_ctor = tensor_allocations();
  t.resize({50});                      // shrink: reuse
  t.resize({100});                     // regrow into capacity: reuse
  EXPECT_EQ(tensor_allocations(), after_ctor);
  EXPECT_EQ(t.shape(), Shape({100}));
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);  // resize zero-fills
  t.resize({101});                     // beyond capacity: counted
  EXPECT_GT(tensor_allocations(), after_ctor);
}

}  // namespace
}  // namespace adafl::tensor
