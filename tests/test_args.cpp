#include "cli/args.h"

#include <gtest/gtest.h>

#include "tensor/check.h"

namespace adafl::cli {
namespace {

ArgParser make() {
  ArgParser p("prog");
  p.option("algo", "fedavg", "algorithm")
      .option("rounds", "40", "round count")
      .option("lr", "0.05", "learning rate")
      .option("verbose", "0", "chatty output");
  return p;
}

bool parse(ArgParser& p, std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, DefaultsApply) {
  ArgParser p = make();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get("algo"), "fedavg");
  EXPECT_EQ(p.get_int("rounds"), 40);
  EXPECT_DOUBLE_EQ(p.get_double("lr"), 0.05);
  EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(ArgParser, ParsesKeyValues) {
  ArgParser p = make();
  ASSERT_TRUE(parse(p, {"--algo=adafl-sync", "--rounds=80", "--lr=0.1"}));
  EXPECT_EQ(p.get("algo"), "adafl-sync");
  EXPECT_EQ(p.get_int("rounds"), 80);
  EXPECT_DOUBLE_EQ(p.get_double("lr"), 0.1);
}

TEST(ArgParser, BareFlagMeansTrue) {
  ArgParser p = make();
  ASSERT_TRUE(parse(p, {"--verbose"}));
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(ArgParser, BoolSpellings) {
  ArgParser p = make();
  ASSERT_TRUE(parse(p, {"--verbose=TRUE"}));
  EXPECT_TRUE(p.get_bool("verbose"));
  ArgParser q = make();
  ASSERT_TRUE(parse(q, {"--verbose=off"}));
  EXPECT_FALSE(q.get_bool("verbose"));
}

TEST(ArgParser, UnknownOptionFails) {
  ArgParser p = make();
  EXPECT_FALSE(parse(p, {"--nope=1"}));
  EXPECT_NE(p.error().find("--nope"), std::string::npos);
}

TEST(ArgParser, PositionalArgumentFails) {
  ArgParser p = make();
  EXPECT_FALSE(parse(p, {"positional"}));
}

TEST(ArgParser, HelpFlagDetected) {
  ArgParser p = make();
  ASSERT_TRUE(parse(p, {"--help"}));
  EXPECT_TRUE(p.help_requested());
}

TEST(ArgParser, UsageListsOptionsAndDefaults) {
  ArgParser p = make();
  const std::string u = p.usage();
  EXPECT_NE(u.find("--rounds"), std::string::npos);
  EXPECT_NE(u.find("default: 40"), std::string::npos);
  EXPECT_NE(u.find("learning rate"), std::string::npos);
}

TEST(ArgParser, TypedGetterValidation) {
  ArgParser p = make();
  ASSERT_TRUE(parse(p, {"--rounds=abc"}));
  EXPECT_THROW(p.get_int("rounds"), CheckError);
  EXPECT_THROW(p.get("undeclared"), CheckError);
  ArgParser q = make();
  ASSERT_TRUE(parse(q, {"--lr=fast"}));
  EXPECT_THROW(q.get_double("lr"), CheckError);
}

TEST(ArgParser, GetIntAtLeastAcceptsValuesOnTheBound) {
  ArgParser p = make();
  ASSERT_TRUE(parse(p, {"--rounds=0"}));
  EXPECT_EQ(p.get_int_at_least("rounds", 0), 0);
  ArgParser q = make();
  ASSERT_TRUE(parse(q, {"--rounds=8"}));
  EXPECT_EQ(q.get_int_at_least("rounds", 1), 8);
}

TEST(ArgParser, GetIntAtLeastRejectsValuesBelowBound) {
  ArgParser p = make();
  ASSERT_TRUE(parse(p, {"--rounds=-3"}));
  EXPECT_THROW(p.get_int_at_least("rounds", 0), CheckError);
}

TEST(ArgParser, DuplicateDeclarationThrows) {
  ArgParser p("x");
  p.option("a", "1", "first");
  EXPECT_THROW(p.option("a", "2", "again"), CheckError);
}

}  // namespace
}  // namespace adafl::cli
