#include "fl/async_trainer.h"

#include <gtest/gtest.h>

#include "fl_fixtures.h"

namespace adafl::fl {
namespace {

using testing::make_mini_task;

AsyncConfig base_config(AsyncAlgorithm algo) {
  AsyncConfig cfg;
  cfg.algo = algo;
  cfg.duration = 6.0;       // simulated seconds; mini-task cycles are ~20ms
  cfg.eval_interval = 1.0;
  cfg.seed = 5;
  return cfg;
}

class AsyncAlgorithmTest : public ::testing::TestWithParam<AsyncAlgorithm> {};

TEST_P(AsyncAlgorithmTest, LearnsAboveChance) {
  auto task = make_mini_task();
  AsyncConfig cfg = base_config(GetParam());
  cfg.client = task.client;
  AsyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  EXPECT_GT(log.final_accuracy(), 0.5) << to_string(GetParam());
  EXPECT_GT(log.ledger.delivered_updates(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AsyncAlgorithmTest,
                         ::testing::Values(AsyncAlgorithm::kFedAsync,
                                           AsyncAlgorithm::kFedBuff),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(AsyncTrainer, DeterministicUnderSeed) {
  auto task = make_mini_task();
  AsyncConfig cfg = base_config(AsyncAlgorithm::kFedAsync);
  cfg.duration = 2.0;
  cfg.client = task.client;
  auto run = [&] {
    AsyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
    return t.run();
  };
  auto a = run();
  auto b = run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i)
    EXPECT_EQ(a.records[i].test_accuracy, b.records[i].test_accuracy);
  EXPECT_EQ(a.ledger.total_upload_bytes(), b.ledger.total_upload_bytes());
}

TEST(AsyncTrainer, EvalRecordsFollowTheInterval) {
  auto task = make_mini_task();
  AsyncConfig cfg = base_config(AsyncAlgorithm::kFedAsync);
  cfg.duration = 3.0;
  cfg.eval_interval = 0.5;
  cfg.client = task.client;
  AsyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  ASSERT_EQ(log.records.size(), 6u);
  EXPECT_DOUBLE_EQ(log.records[0].time, 0.5);
  EXPECT_DOUBLE_EQ(log.records.back().time, 3.0);
}

TEST(AsyncTrainer, MaxUpdatesStopsAcceptingWork) {
  auto task = make_mini_task();
  AsyncConfig cfg = base_config(AsyncAlgorithm::kFedAsync);
  cfg.client = task.client;
  cfg.max_updates = 7;
  AsyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  EXPECT_EQ(log.applied_updates, 7);
  // Transport may have delivered a few more that the cap discarded.
  EXPECT_GE(log.ledger.delivered_updates(), log.applied_updates);
}

TEST(AsyncTrainer, StragglersDeliverFewerUpdates) {
  auto task = make_mini_task(4);
  AsyncConfig cfg = base_config(AsyncAlgorithm::kFedAsync);
  cfg.client = task.client;
  cfg.duration = 4.0;
  cfg.faults.unreliable_fraction = 0.5;  // clients 0,1 slowed 3x
  cfg.faults.straggler_slowdown = 3.0;
  AsyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  const auto slow = log.ledger.updates_of(0) + log.ledger.updates_of(1);
  const auto fast = log.ledger.updates_of(2) + log.ledger.updates_of(3);
  EXPECT_LT(slow, fast);
  EXPECT_GT(slow, 0);
}

TEST(AsyncTrainer, DropoutFaultWastesUploads) {
  auto task = make_mini_task(4);
  AsyncConfig cfg = base_config(AsyncAlgorithm::kFedAsync);
  cfg.client = task.client;
  cfg.duration = 4.0;
  cfg.faults.unreliable_fraction = 0.5;
  cfg.faults.dropout_prob = 0.5;
  AsyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  EXPECT_GT(log.ledger.attempted_updates(), log.ledger.delivered_updates());
}

TEST(AsyncTrainer, FedBuffAppliesInBatchesOfK) {
  auto task = make_mini_task(4);
  AsyncConfig cfg = base_config(AsyncAlgorithm::kFedBuff);
  cfg.client = task.client;
  cfg.buffer_size = 4;
  cfg.max_updates = 11;  // 2 full buffers applied, 3 left buffered
  AsyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto initial = task.factory().get_flat();
  auto log = t.run();
  EXPECT_EQ(log.applied_updates, 11);
  EXPECT_NE(t.global(), initial);  // at least one buffer flush happened
}

TEST(AsyncTrainer, LinksAddLatencyToCycles) {
  auto task = make_mini_task(2);
  AsyncConfig cfg = base_config(AsyncAlgorithm::kFedAsync);
  cfg.client = task.client;
  cfg.duration = 3.0;
  AsyncTrainer ideal(cfg, task.factory, &task.train, task.parts, &task.test);
  const auto n_ideal = ideal.run().ledger.delivered_updates();
  cfg.links = net::make_fleet(2, 1.0, net::LinkQuality::kGood,
                              net::LinkQuality::kCongested);
  AsyncTrainer slow(cfg, task.factory, &task.train, task.parts, &task.test);
  const auto n_slow = slow.run().ledger.delivered_updates();
  EXPECT_LT(n_slow, n_ideal);
}

TEST(AsyncTrainer, InvalidConfigThrows) {
  auto task = make_mini_task(2);
  AsyncConfig cfg = base_config(AsyncAlgorithm::kFedAsync);
  cfg.client = task.client;
  cfg.duration = 0.0;
  EXPECT_THROW(
      AsyncTrainer(cfg, task.factory, &task.train, task.parts, &task.test),
      CheckError);
  cfg.duration = 1.0;
  cfg.buffer_size = 0;
  EXPECT_THROW(
      AsyncTrainer(cfg, task.factory, &task.train, task.parts, &task.test),
      CheckError);
  cfg.buffer_size = 1;
  cfg.links.resize(1);
  EXPECT_THROW(
      AsyncTrainer(cfg, task.factory, &task.train, task.parts, &task.test),
      CheckError);
}

}  // namespace
}  // namespace adafl::fl
