#include "nn/batchnorm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.h"

namespace adafl::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;

TEST(BatchNorm2d, TrainingOutputIsStandardizedPerChannel) {
  BatchNorm2d bn(2);
  Rng rng(1);
  Tensor x = Tensor::randn({4, 2, 3, 3}, rng, 5.0f, 3.0f);
  Tensor y = bn.forward(x, /*training=*/true);
  // Per channel: mean ~0, var ~1 (gamma=1, beta=0 initially).
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    for (std::int64_t i = 0; i < 4; ++i)
      for (std::int64_t k = 0; k < 9; ++k) {
        const float v = y[(i * 2 + c) * 9 + k];
        sum += v;
        sq += static_cast<double>(v) * v;
      }
    const double mean = sum / 36.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / 36.0 - mean * mean, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, RunningStatsConvergeToDataStats) {
  BatchNorm2d bn(1, /*momentum=*/0.5f);
  Rng rng(2);
  for (int step = 0; step < 40; ++step) {
    Tensor x = Tensor::randn({8, 1, 2, 2}, rng, 3.0f, 2.0f);
    bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 3.0f, 0.4f);
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 1.0f);
}

TEST(BatchNorm2d, EvalModeUsesRunningStats) {
  BatchNorm2d bn(1, 1.0f);  // momentum 1: running stats = last batch
  Rng rng(3);
  Tensor x = Tensor::randn({8, 1, 2, 2}, rng, 2.0f, 1.0f);
  bn.forward(x, true);
  // Constant eval input: output should be (c - mean)/sqrt(var+eps).
  Tensor c({1, 1, 2, 2}, 2.0f);
  Tensor y = bn.forward(c, false);
  const float expected =
      (2.0f - bn.running_mean()[0]) /
      std::sqrt(bn.running_var()[0] + 1e-5f);
  for (float v : y.flat()) EXPECT_NEAR(v, expected, 1e-5);
}

TEST(BatchNorm2d, GradientCheckTrainingMode) {
  Rng rng(4);
  BatchNorm2d bn(3);
  Tensor x = Tensor::randn({2, 3, 3, 3}, rng);
  testing::check_layer_gradients(bn, x, 42);
}

TEST(BatchNorm2d, CollectsGammaBeta) {
  BatchNorm2d bn(5);
  std::vector<ParamRef> params;
  bn.collect_params(params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].value->size(), 5);
  EXPECT_EQ(params[1].value->size(), 5);
  // Running stats are NOT parameters (FedBN convention).
}

TEST(BatchNorm2d, InvalidConfigThrows) {
  EXPECT_THROW(BatchNorm2d(0), CheckError);
  EXPECT_THROW(BatchNorm2d(2, 0.0f), CheckError);
  EXPECT_THROW(BatchNorm2d(2, 0.1f, 0.0f), CheckError);
  BatchNorm2d bn(2);
  Tensor wrong({1, 3, 2, 2});
  EXPECT_THROW(bn.forward(wrong, true), CheckError);
  EXPECT_THROW(bn.backward(Tensor({1, 2, 2, 2})), CheckError);
}

}  // namespace
}  // namespace adafl::nn
