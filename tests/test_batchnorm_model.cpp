// Integration: BatchNorm2d inside a trainable model, including the FedBN
// property that running statistics are NOT federated.
#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pool.h"
#include "nn/model.h"
#include "nn/sequential.h"

namespace adafl::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;

Model bn_model(std::uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(1, 4, 3, rng, 1, 1);
  net->emplace<BatchNorm2d>(4);
  net->emplace<ReLU>();
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(4, 3, rng);
  return Model(std::move(net));
}

Batch toy_batch(std::uint64_t seed) {
  Rng rng(seed);
  Batch b;
  b.inputs = Tensor::randn({9, 1, 6, 6}, rng);
  for (int i = 0; i < 9; ++i) b.labels.push_back(i % 3);
  return b;
}

TEST(BatchNormModel, TrainsOnToyTask) {
  Model m = bn_model(1);
  Batch b = toy_batch(2);
  Sgd opt(0.1f, 0.9f);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 80; ++i) {
    const float loss = m.train_batch(b, opt);
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, 0.5f * first);
}

TEST(BatchNormModel, RunningStatsAreNotInFlatParams) {
  Model a = bn_model(1);
  Model b = bn_model(1);
  // Train only `a`: its BN running stats drift, its weights change.
  Batch batch = toy_batch(2);
  Sgd opt(0.1f);
  for (int i = 0; i < 5; ++i) a.train_batch(batch, opt);
  // Copy a's *parameters* into b (the federated exchange).
  b.set_flat(a.get_flat());
  EXPECT_EQ(a.get_flat(), b.get_flat());
  // Eval outputs still differ because running stats stayed local to `a` —
  // exactly the FedBN property documented in batchnorm.h.
  Tensor xa = a.forward(batch.inputs, false);
  Tensor xb = b.forward(batch.inputs, false);
  double diff = 0.0;
  for (std::int64_t i = 0; i < xa.size(); ++i)
    diff += std::abs(xa[i] - xb[i]);
  EXPECT_GT(diff, 1e-4);
}

TEST(BatchNormModel, EvalIsDeterministicAfterTraining) {
  Model m = bn_model(3);
  Batch b = toy_batch(4);
  Sgd opt(0.05f);
  for (int i = 0; i < 3; ++i) m.train_batch(b, opt);
  Tensor y1 = m.forward(b.inputs, false);
  Tensor y2 = m.forward(b.inputs, false);
  for (std::int64_t i = 0; i < y1.size(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

}  // namespace
}  // namespace adafl::nn
