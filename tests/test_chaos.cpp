// Chaos-injection and crash-recovery tests: scripted transport faults must
// leave the deployed session bitwise identical to the clean simulator, and a
// killed server must resume from its durable checkpoint with bitwise
// identical final weights (deployed loopback AND simulator trainers).
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <thread>

#include "core/server_checkpoint.h"
#include "deployed_test_util.h"
#include "net/transport/faulty.h"
#include "net/transport/loopback.h"

namespace adafl::testutil {
namespace {

using namespace net::transport;
using std::chrono::milliseconds;

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove((dir + "/server.ckpt").c_str());
  return dir;
}

void copy_file(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  ASSERT_TRUE(in.good()) << from;
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  out << in.rdbuf();
}

// --- FaultyTransport semantics on a raw loopback pair. --------------------

Frame ping(std::uint32_t round) {
  Frame f;
  f.type = MsgType::kPing;
  f.round = round;
  f.client_id = 3;
  f.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  return f;
}

TEST(FaultyTransport, DropIsOneShotAndInvisibleToSender) {
  auto pair = make_loopback_pair();
  FaultPlan plan;
  plan.drop(FaultDir::kSend, MsgType::kPing, 1);
  FaultyTransport ft(std::move(pair.second), plan);
  EXPECT_TRUE(ft.send(ping(1)));  // dropped, but reported as sent
  EXPECT_FALSE(pair.first->recv(milliseconds(0)).has_value());
  EXPECT_TRUE(ft.send(ping(1)));  // rule already fired: delivered
  ASSERT_TRUE(pair.first->recv(milliseconds(0)).has_value());
  EXPECT_EQ(ft.faults_fired(), 1u);
}

TEST(FaultyTransport, DuplicateOnRecvReplaysTheFrameOnce) {
  auto pair = make_loopback_pair();
  FaultPlan plan;
  plan.duplicate(FaultDir::kRecv, MsgType::kPing, 2);
  FaultyTransport ft(std::move(pair.second), plan);
  ASSERT_TRUE(pair.first->send(ping(2)));
  auto a = ft.recv(milliseconds(0));
  auto b = ft.recv(milliseconds(0));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->payload, b->payload);
  EXPECT_FALSE(ft.recv(milliseconds(0)).has_value());
}

TEST(FaultyTransport, CorruptRecvThrowsLikeAMalformedStream) {
  auto pair = make_loopback_pair();
  FaultPlan plan;
  plan.corrupt_recv(MsgType::kPing, 3, /*offset=*/kFrameHeaderBytes + 2);
  FaultyTransport ft(std::move(pair.second), plan);
  ASSERT_TRUE(pair.first->send(ping(3)));
  EXPECT_THROW(ft.recv(milliseconds(0)), CheckError);
}

TEST(FaultyTransport, SeverClosesTheConnection) {
  auto pair = make_loopback_pair();
  FaultPlan plan;
  plan.sever_on_recv(MsgType::kPing, 4);
  FaultyTransport ft(std::move(pair.second), plan);
  ASSERT_TRUE(pair.first->send(ping(4)));
  EXPECT_FALSE(ft.recv(milliseconds(0)).has_value());
  EXPECT_TRUE(ft.closed());
}

TEST(FaultPlan, RandomIsSeedDeterministic) {
  const FaultPlan a = FaultPlan::random(0xFEED, 5, 4, true);
  const FaultPlan b = FaultPlan::random(0xFEED, 5, 4, true);
  ASSERT_EQ(a.rules.size(), b.rules.size());
  ASSERT_EQ(a.rules.size(), 6u);  // 5 faults + trailing sever
  for (std::size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].dir, b.rules[i].dir);
    EXPECT_EQ(a.rules[i].kind, b.rules[i].kind);
    EXPECT_EQ(a.rules[i].msg_type, b.rules[i].msg_type);
    EXPECT_EQ(a.rules[i].round, b.rules[i].round);
    EXPECT_EQ(a.rules[i].delay, b.rules[i].delay);
  }
}

// --- Chaos matrix: scripted faults vs the clean simulator, bitwise. -------

/// Deployed loopback run with fault plans wrapped around ONE client's first
/// connection (client side and/or server side). `fault_count` receives the
/// number of rules that actually fired.
DeployedResult run_chaos_loopback(const cli::TaskSpec& spec,
                                  const fl::ClientTrainConfig& client,
                                  const core::AdaFlParams& params, int rounds,
                                  int faulty_client, FaultPlan client_plan,
                                  FaultPlan server_plan,
                                  std::atomic<int>* fault_count) {
  auto task = cli::build_task(spec);
  ServerSessionConfig scfg = make_server_config(spec, client, params, rounds);
  // Fast nudge so dropped frames are retransmitted promptly; quorum stays
  // "all", so no fault can silently degrade a round (the run would stall
  // against the 30 s deadline instead, failing loudly).
  scfg.retransmit_nudge = milliseconds(150);
  ServerSession server(scfg, task.factory, &task.test);

  const int n = spec.clients;
  std::vector<std::optional<cli::TaskBundle>> bundles(
      static_cast<std::size_t>(n));
  DeployedResult res;
  res.clients.resize(static_cast<std::size_t>(n));
  auto count_fault = [fault_count](const FaultRule&, const Frame&) {
    if (fault_count) fault_count->fetch_add(1);
  };
  // Wrap only the first dial: a redial after a recovered fault must come up
  // clean, or a one-shot corrupt-on-catchup would loop forever.
  auto wrapped = std::make_shared<std::atomic<bool>>(false);
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      ClientSessionConfig ccfg = test_client_config(id);
      ccfg.backoff.initial = milliseconds(1);
      ccfg.backoff.max = milliseconds(50);
      ClientSession cs(
          ccfg,
          [&, id]() -> std::unique_ptr<Transport> {
            auto pair = make_loopback_pair();
            std::unique_ptr<Transport> server_end = std::move(pair.first);
            std::unique_ptr<Transport> client_end = std::move(pair.second);
            if (id == faulty_client && !wrapped->exchange(true)) {
              if (!server_plan.rules.empty()) {
                auto ft = std::make_unique<FaultyTransport>(
                    std::move(server_end), server_plan);
                ft->set_on_fault(count_fault);
                server_end = std::move(ft);
              }
              if (!client_plan.rules.empty()) {
                auto ft = std::make_unique<FaultyTransport>(
                    std::move(client_end), client_plan);
                ft->set_on_fault(count_fault);
                client_end = std::move(ft);
              }
            }
            server.add_transport(std::move(server_end));
            return client_end;
          },
          make_bootstrap(&bundles[static_cast<std::size_t>(id)]));
      res.clients[static_cast<std::size_t>(id)] = cs.run();
    });
  }
  res.log = server.run();
  for (auto& t : threads) t.join();
  res.global = server.global();
  res.stats = server.stats();
  return res;
}

TEST(ChaosMatrix, ScriptedFaultsPreserveBitwiseEquivalence) {
  const cli::TaskSpec spec = small_task_spec();
  const fl::ClientTrainConfig client = small_client_config();
  const core::AdaFlParams params = small_params();
  const int rounds = 4;
  const SimResult sim = run_simulator(spec, client, params, rounds);

  struct Case {
    const char* name;
    FaultPlan client_side;
    FaultPlan server_side;
  };
  std::vector<Case> cases;
  {
    Case c{"drop-send-score", {}, {}};
    c.client_side.drop(FaultDir::kSend, MsgType::kScore, 2);
    cases.push_back(c);
  }
  {
    Case c{"drop-recv-model", {}, {}};
    c.client_side.drop(FaultDir::kRecv, MsgType::kModel, 2);
    cases.push_back(c);
  }
  {
    Case c{"drop-recv-select", {}, {}};
    c.client_side.drop(FaultDir::kRecv, MsgType::kSelect);
    cases.push_back(c);
  }
  {
    Case c{"drop-send-update", {}, {}};
    c.client_side.drop(FaultDir::kSend, MsgType::kUpdate);
    cases.push_back(c);
  }
  {
    Case c{"duplicate-send-score", {}, {}};
    c.client_side.duplicate(FaultDir::kSend, MsgType::kScore, 3);
    cases.push_back(c);
  }
  {
    Case c{"duplicate-recv-select", {}, {}};
    c.client_side.duplicate(FaultDir::kRecv, MsgType::kSelect);
    cases.push_back(c);
  }
  {
    Case c{"delay-send-update", {}, {}};
    c.client_side.delay_frame(FaultDir::kSend, MsgType::kUpdate, -1,
                              milliseconds(10));
    cases.push_back(c);
  }
  {
    Case c{"corrupt-recv-model-payload", {}, {}};
    c.client_side.corrupt_recv(MsgType::kModel, 2,
                               /*offset=*/kFrameHeaderBytes + 100);
    cases.push_back(c);
  }
  {
    Case c{"sever-recv-model", {}, {}};
    c.client_side.sever_on_recv(MsgType::kModel, 3);
    cases.push_back(c);
  }
  {
    // Server-side damage: the faulty client's SCORE arrives corrupted, the
    // server drops the connection (CheckError stays inside run()), and the
    // client redials and rescores.
    Case c{"server-corrupt-recv-score", {}, {}};
    c.server_side.corrupt_recv(MsgType::kScore, 2,
                               /*offset=*/kFrameHeaderBytes + 2);
    cases.push_back(c);
  }
  {
    Case c{"random-seeded-plan", {}, {}};
    c.client_side = FaultPlan::random(0xC0FFEE, 4, rounds, true);
    cases.push_back(c);
  }

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    std::atomic<int> fired{0};
    DeployedResult dep =
        run_chaos_loopback(spec, client, params, rounds, /*faulty_client=*/1,
                           c.client_side, c.server_side, &fired);
    // Book the injected faults the way a chaos harness reports them.
    for (int i = 0; i < fired.load(); ++i) dep.log.ledger.record_fault();
    EXPECT_EQ(dep.log.ledger.total_faults(), fired.load());
    // Bitwise: every scripted fault is absorbed by retransmission,
    // deduplication, or redial+catchup without changing the result.
    EXPECT_EQ(dep.global, sim.global);
    EXPECT_EQ(dep.log.records.size(), static_cast<std::size_t>(rounds));
    EXPECT_EQ(dep.stats.selected_updates, sim.stats.selected_updates);
    for (const auto& st : dep.clients) EXPECT_TRUE(st.completed);
  }
}

// --- Kill + resume: deployed loopback, bitwise. ---------------------------

TEST(ChaosRecovery, KillResumeLoopbackBitwise) {
  const cli::TaskSpec spec = small_task_spec();
  const fl::ClientTrainConfig client = small_client_config();
  const core::AdaFlParams params = small_params();
  const int rounds = 4;
  const SimResult sim = run_simulator(spec, client, params, rounds);

  const std::string dir = fresh_dir("chaos_kill_resume");
  auto task = cli::build_task(spec);
  ServerSessionConfig scfg = make_server_config(spec, client, params, rounds);
  scfg.retransmit_nudge = milliseconds(150);
  scfg.checkpoint_dir = dir;
  scfg.checkpoint_every = 1;
  ServerSession server1(scfg, task.factory, &task.test);

  // Dial routing: clients survive the kill and redial into whichever server
  // currently exists (nullptr while the replacement is being built).
  std::mutex mu;
  ServerSession* current = &server1;
  auto dial_to_current = [&]() -> std::unique_ptr<Transport> {
    std::lock_guard<std::mutex> lock(mu);
    if (current == nullptr) return nullptr;  // counts as a failed dial
    auto pair = make_loopback_pair();
    current->add_transport(std::move(pair.first));
    return std::move(pair.second);
  };

  // Client 0's first connection drops the round-3 MODEL and simultaneously
  // "kills" server1: request_stop(false) is the SIGKILL-equivalent — no
  // stop-time checkpoint, recovery must come from the round-2 cadence write.
  auto killed = std::make_shared<std::atomic<bool>>(false);

  const int n = spec.clients;
  std::vector<std::optional<cli::TaskBundle>> bundles(
      static_cast<std::size_t>(n));
  std::vector<ClientRunStats> stats(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      ClientSessionConfig ccfg = test_client_config(id);
      ccfg.backoff.initial = milliseconds(1);
      ccfg.backoff.max = milliseconds(50);
      ClientSession cs(
          ccfg,
          [&, id]() -> std::unique_ptr<Transport> {
            auto t = dial_to_current();
            if (!t || id != 0 || killed->load()) return t;
            FaultPlan plan;
            plan.drop(FaultDir::kRecv, MsgType::kModel, 3);
            auto ft = std::make_unique<FaultyTransport>(std::move(t),
                                                        std::move(plan));
            ft->set_on_fault([&, killed](const FaultRule&, const Frame&) {
              killed->store(true);
              server1.request_stop(/*write_checkpoint=*/false);
            });
            return ft;
          },
          make_bootstrap(&bundles[static_cast<std::size_t>(id)]));
      stats[static_cast<std::size_t>(id)] = cs.run();
    });
  }

  const fl::TrainLog log1 = server1.run();
  EXPECT_TRUE(log1.interrupted);

  {
    std::lock_guard<std::mutex> lock(mu);
    current = nullptr;
  }
  ServerSessionConfig scfg2 = scfg;
  scfg2.resume = true;
  ServerSession server2(scfg2, task.factory, &task.test);
  {
    std::lock_guard<std::mutex> lock(mu);
    current = &server2;
  }
  const fl::TrainLog log2 = server2.run();
  for (auto& t : threads) t.join();

  // The kill fired in round 3; if the stop raced past a completed round the
  // cadence checkpoint moves one round further, never backwards.
  EXPECT_GE(server2.resumed_from(), 3);
  EXPECT_LE(server2.resumed_from(), rounds);
  EXPECT_EQ(log2.ledger.total_recoveries(), 1);
  EXPECT_FALSE(log2.interrupted);
  // Bitwise: the recovered deployment finishes exactly where an
  // uninterrupted simulator run lands.
  EXPECT_EQ(server2.global(), sim.global);
  for (const auto& st : stats) EXPECT_TRUE(st.completed);
}

// --- Kill + resume: simulator trainers, bitwise. --------------------------

TEST(ChaosRecovery, AdaFlSimStopResumeBitwise) {
  const cli::TaskSpec spec = small_task_spec();
  const int rounds = 5;
  auto task = cli::build_task(spec);
  core::AdaFlSyncConfig cfg;
  cfg.params = small_params();
  cfg.rounds = rounds;
  cfg.client = small_client_config();
  cfg.eval_every = 1;
  cfg.seed = spec.seed;

  core::AdaFlSyncTrainer clean(cfg, task.factory, &task.train, task.parts,
                               &task.test);
  const fl::TrainLog clean_log = clean.run();

  const std::string path = fresh_dir("adafl_sim_resume") + "/server.ckpt";
  std::atomic<bool> stop{false};
  core::AdaFlSyncConfig icfg = cfg;
  icfg.checkpoint_path = path;
  icfg.checkpoint_every = 2;  // stop lands between cadence writes
  icfg.stop = &stop;
  icfg.on_round_end = [&](int round) {
    if (round == 3) stop.store(true);
  };
  core::AdaFlSyncTrainer t1(icfg, task.factory, &task.train, task.parts,
                            &task.test);
  const fl::TrainLog log1 = t1.run();
  EXPECT_TRUE(log1.interrupted);

  core::AdaFlSyncConfig rcfg = cfg;
  rcfg.checkpoint_path = path;
  rcfg.resume = true;
  core::AdaFlSyncTrainer t2(rcfg, task.factory, &task.train, task.parts,
                            &task.test);
  const fl::TrainLog log2 = t2.run();
  EXPECT_FALSE(log2.interrupted);
  EXPECT_EQ(log2.ledger.total_recoveries(), 1);
  EXPECT_EQ(t2.global(), clean.global());
  EXPECT_EQ(t2.stats().selected_updates, clean.stats().selected_updates);
  EXPECT_EQ(log2.total_time, clean_log.total_time);
  std::remove(path.c_str());
}

TEST(ChaosRecovery, FedAdamSimResumeFromCadenceCheckpointBitwise) {
  const cli::TaskSpec spec = small_task_spec();
  const int rounds = 5;
  auto task = cli::build_task(spec);
  fl::SyncConfig cfg;
  cfg.algo = fl::Algorithm::kFedAdam;
  cfg.rounds = rounds;
  cfg.participation = 0.75;  // exercises the schedule permutation
  cfg.client = small_client_config();
  cfg.eval_every = 1;
  cfg.seed = spec.seed;

  const std::string dir = fresh_dir("fedadam_sim_resume");
  const std::string path = dir + "/server.ckpt";
  const std::string saved = dir + "/server.ckpt.round2";

  // Full run with checkpointing; stash the mid-run cadence file exactly as a
  // kill -9 would have left it (next_round = 3, no stop-time write).
  fl::SyncConfig icfg = cfg;
  icfg.checkpoint_path = path;
  icfg.checkpoint_every = 1;
  icfg.on_round_end = [&](int round) {
    if (round == 2) copy_file(path, saved);
  };
  fl::SyncTrainer t1(icfg, task.factory, &task.train, task.parts, &task.test);
  const fl::TrainLog log1 = t1.run();
  EXPECT_FALSE(log1.interrupted);

  copy_file(saved, path);
  fl::SyncConfig rcfg = cfg;
  rcfg.checkpoint_path = path;
  rcfg.resume = true;
  fl::SyncTrainer t2(rcfg, task.factory, &task.train, task.parts, &task.test);
  const fl::TrainLog log2 = t2.run();
  EXPECT_EQ(log2.ledger.total_recoveries(), 1);
  EXPECT_EQ(t2.global(), t1.global());
  EXPECT_EQ(log2.total_time, log1.total_time);
  std::remove(path.c_str());
  std::remove(saved.c_str());
}

TEST(ChaosRecovery, ResumeRejectsAMismatchedRun) {
  const cli::TaskSpec spec = small_task_spec();
  auto task = cli::build_task(spec);
  core::AdaFlSyncConfig cfg;
  cfg.params = small_params();
  cfg.rounds = 2;
  cfg.client = small_client_config();
  cfg.eval_every = 1;
  cfg.seed = spec.seed;
  const std::string path = fresh_dir("mismatch_resume") + "/server.ckpt";
  cfg.checkpoint_path = path;
  core::AdaFlSyncTrainer t1(cfg, task.factory, &task.train, task.parts,
                            &task.test);
  (void)t1.run();

  core::AdaFlSyncConfig bad = cfg;
  bad.resume = true;
  bad.seed = cfg.seed + 1;  // different experiment
  core::AdaFlSyncTrainer t2(bad, task.factory, &task.train, task.parts,
                            &task.test);
  try {
    (void)t2.run();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos);
    EXPECT_NE(what.find("delete the checkpoint"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(ChaosRecovery, ResumeAfterCompletionIsActionable) {
  // A finished run leaves a checkpoint at next_round = rounds + 1. Resuming
  // from it would execute zero rounds and report nothing; it must be
  // rejected with an explanation instead.
  const cli::TaskSpec spec = small_task_spec();
  auto task = cli::build_task(spec);
  core::AdaFlSyncConfig cfg;
  cfg.params = small_params();
  cfg.rounds = 2;
  cfg.client = small_client_config();
  cfg.eval_every = 1;
  cfg.seed = spec.seed;
  const std::string path = fresh_dir("complete_resume") + "/server.ckpt";
  cfg.checkpoint_path = path;
  core::AdaFlSyncTrainer t1(cfg, task.factory, &task.train, task.parts,
                            &task.test);
  (void)t1.run();

  core::AdaFlSyncConfig again = cfg;
  again.resume = true;
  core::AdaFlSyncTrainer t2(again, task.factory, &task.train, task.parts,
                            &task.test);
  try {
    (void)t2.run();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("already complete"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(ChaosRecovery, ResumeWithoutCheckpointFileIsActionable) {
  const cli::TaskSpec spec = small_task_spec();
  auto task = cli::build_task(spec);
  core::AdaFlSyncConfig cfg;
  cfg.params = small_params();
  cfg.rounds = 2;
  cfg.client = small_client_config();
  cfg.seed = spec.seed;
  cfg.checkpoint_path = fresh_dir("no_ckpt_resume") + "/server.ckpt";
  cfg.resume = true;
  core::AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts,
                           &task.test);
  EXPECT_THROW((void)t.run(), std::runtime_error);
}

}  // namespace
}  // namespace adafl::testutil
