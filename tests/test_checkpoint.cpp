#include "nn/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>

#include "nn/models.h"

namespace adafl::nn {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const ImageSpec spec{1, 16, 16, 4};
  Model a = make_mlp(spec, 8, 1);
  Model b = make_mlp(spec, 8, 2);  // different init
  ASSERT_NE(a.get_flat(), b.get_flat());

  const std::string path = temp_path("adafl_ckpt.bin");
  save_checkpoint(a, path);
  load_checkpoint(b, path);
  EXPECT_EQ(a.get_flat(), b.get_flat());
  EXPECT_EQ(checkpoint_param_count(path), a.param_count());
  std::remove(path.c_str());
}

TEST(Checkpoint, ArchitectureMismatchThrows) {
  const ImageSpec spec{1, 16, 16, 4};
  Model a = make_mlp(spec, 8, 1);
  Model big = make_mlp(spec, 16, 1);
  const std::string path = temp_path("adafl_ckpt2.bin");
  save_checkpoint(a, path);
  EXPECT_THROW(load_checkpoint(big, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, BadMagicThrows) {
  const std::string path = temp_path("adafl_notckpt.bin");
  std::ofstream(path) << "this is not a checkpoint";
  const ImageSpec spec{1, 16, 16, 4};
  Model m = make_mlp(spec, 8, 1);
  EXPECT_THROW(load_checkpoint(m, path), std::runtime_error);
  EXPECT_THROW(checkpoint_param_count(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedPayloadThrows) {
  const ImageSpec spec{1, 16, 16, 4};
  Model a = make_mlp(spec, 8, 1);
  const std::string path = temp_path("adafl_ckpt3.bin");
  save_checkpoint(a, path);
  // Truncate the file.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(load_checkpoint(a, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TrailingBytesThrow) {
  const ImageSpec spec{1, 16, 16, 4};
  Model a = make_mlp(spec, 8, 1);
  const std::string path = temp_path("adafl_ckpt4.bin");
  save_checkpoint(a, path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "junk";
  }
  EXPECT_THROW(load_checkpoint(a, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, NonFiniteParameterThrows) {
  const ImageSpec spec{1, 16, 16, 4};
  Model a = make_mlp(spec, 8, 1);
  auto flat = a.get_flat();
  flat[flat.size() / 2] = std::numeric_limits<float>::quiet_NaN();
  a.set_flat(flat);
  const std::string path = temp_path("adafl_ckpt5.bin");
  save_checkpoint(a, path);
  EXPECT_THROW(load_checkpoint(a, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  const ImageSpec spec{1, 16, 16, 4};
  Model m = make_mlp(spec, 8, 1);
  EXPECT_THROW(load_checkpoint(m, "/nonexistent/ckpt.bin"),
               std::runtime_error);
  EXPECT_THROW(save_checkpoint(m, "/nonexistent/ckpt.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace adafl::nn
