#include "fl/client.h"

#include <gtest/gtest.h>

#include "fl_fixtures.h"
#include "tensor/tensor.h"

namespace adafl::fl {
namespace {

using testing::make_mini_task;

TEST(FlClient, TrainFromReturnsDeltaOfCorrectLength) {
  auto task = make_mini_task();
  FlClient c(0, task.factory, &task.train, task.parts[0], task.client,
             workstation(), 5);
  auto model = task.factory();
  const auto global = model.get_flat();
  auto r = c.train_from(global);
  EXPECT_EQ(static_cast<std::int64_t>(r.delta.size()), model.param_count());
  EXPECT_GT(tensor::l2_norm(r.delta), 0.0);
  EXPECT_EQ(r.num_examples, static_cast<std::int64_t>(task.parts[0].size()));
  EXPECT_GT(r.compute_seconds, 0.0);
}

TEST(FlClient, ApplyingOwnDeltaReducesLocalLoss) {
  auto task = make_mini_task(2);
  FlClient c(0, task.factory, &task.train, task.parts[0], task.client,
             workstation(), 5);
  auto model = task.factory();
  auto global = model.get_flat();
  auto r = c.train_from(global);
  // w_local = global - delta should fit the client's data better.
  auto batch = task.train.gather(task.parts[0]);
  model.set_flat(global);
  model.zero_grad();
  const float loss_before = model.compute_gradients(batch);
  model.add_flat(r.delta, -1.0f);
  model.zero_grad();
  const float loss_after = model.compute_gradients(batch);
  EXPECT_LT(loss_after, loss_before);
}

TEST(FlClient, DeterministicUnderSeed) {
  auto task = make_mini_task();
  FlClient a(0, task.factory, &task.train, task.parts[0], task.client,
             workstation(), 9);
  FlClient b(0, task.factory, &task.train, task.parts[0], task.client,
             workstation(), 9);
  auto model = task.factory();
  const auto global = model.get_flat();
  EXPECT_EQ(a.train_from(global).delta, b.train_from(global).delta);
}

TEST(FlClient, ComputeTimeScalesWithDeviceSlowdown) {
  auto task = make_mini_task();
  FlClient fast(0, task.factory, &task.train, task.parts[0], task.client,
                workstation(), 9);
  FlClient slow(1, task.factory, &task.train, task.parts[0], task.client,
                straggler(workstation(), 3.0), 9);
  auto model = task.factory();
  const auto global = model.get_flat();
  const double tf = fast.train_from(global).compute_seconds;
  const double ts = slow.train_from(global).compute_seconds;
  EXPECT_NEAR(ts / tf, 3.0, 1e-9);
}

TEST(FlClient, ProxTermShrinksDelta) {
  auto task = make_mini_task();
  auto prox_cfg = task.client;
  prox_cfg.prox_mu = 5.0f;  // strong pull toward the global model
  FlClient plain(0, task.factory, &task.train, task.parts[0], task.client,
                 workstation(), 9);
  FlClient prox(0, task.factory, &task.train, task.parts[0], prox_cfg,
                workstation(), 9);
  auto model = task.factory();
  const auto global = model.get_flat();
  const double d_plain = tensor::l2_norm(plain.train_from(global).delta);
  const double d_prox = tensor::l2_norm(prox.train_from(global).delta);
  EXPECT_LT(d_prox, d_plain);
}

TEST(FlClient, ScaffoldControlVariateIdentity) {
  // SCAFFOLD option II: delta_c = -c + delta / (K * lr) on the first round
  // (c_i starts at 0).
  auto task = make_mini_task();
  FlClient c(0, task.factory, &task.train, task.parts[0], task.client,
             workstation(), 9);
  auto model = task.factory();
  const auto global = model.get_flat();
  std::vector<float> c_global(global.size(), 0.01f);
  std::vector<float> delta_c;
  auto r = c.train_scaffold(global, c_global, &delta_c);
  const float inv = 1.0f / (task.client.local_steps * task.client.lr);
  for (std::size_t i = 0; i < delta_c.size(); i += 97) {
    const float expected = -c_global[i] + r.delta[i] * inv;
    EXPECT_NEAR(delta_c[i], expected, 1e-5f + 1e-4f * std::abs(expected));
  }
}

TEST(FlClient, ScaffoldRequiresOutputParameter) {
  auto task = make_mini_task();
  FlClient c(0, task.factory, &task.train, task.parts[0], task.client,
             workstation(), 9);
  auto model = task.factory();
  const auto global = model.get_flat();
  std::vector<float> c_global(global.size(), 0.0f);
  EXPECT_THROW(c.train_scaffold(global, c_global, nullptr), CheckError);
}

TEST(FlClient, WrongGlobalLengthThrows) {
  auto task = make_mini_task();
  FlClient c(0, task.factory, &task.train, task.parts[0], task.client,
             workstation(), 9);
  std::vector<float> wrong(10, 0.0f);
  EXPECT_THROW(c.train_from(wrong), CheckError);
}

TEST(MakeClients, BuildsOnePerPartition) {
  auto task = make_mini_task(6);
  auto clients =
      make_clients(task.factory, &task.train, task.parts, task.client, {}, 4);
  ASSERT_EQ(clients.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(clients[static_cast<std::size_t>(i)].id(), i);
}

TEST(MakeClients, DeviceCountMismatchThrows) {
  auto task = make_mini_task(4);
  std::vector<DeviceProfile> devs(3, workstation());
  EXPECT_THROW(
      make_clients(task.factory, &task.train, task.parts, task.client, devs, 4),
      CheckError);
}

TEST(DeviceProfile, SecondsScaleLinearly) {
  auto p = raspberry_pi();
  EXPECT_DOUBLE_EQ(p.seconds_for(100), 100 * p.base_sec_per_sample);
  auto s = straggler(p, 2.0);
  EXPECT_DOUBLE_EQ(s.seconds_for(100), 2.0 * p.seconds_for(100));
  EXPECT_NE(s.name, p.name);
}

}  // namespace
}  // namespace adafl::fl
