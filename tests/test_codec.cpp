#include "compress/codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tensor/tensor.h"

namespace adafl::compress {
namespace {

using tensor::Rng;

std::vector<float> random_grad(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> g(n);
  for (auto& v : g) v = static_cast<float>(rng.normal());
  return g;
}

TEST(IdentityCodec, LosslessRoundTrip) {
  auto g = random_grad(100, 1);
  Rng rng(2);
  IdentityCodec codec;
  auto e = codec.encode(g, rng);
  EXPECT_EQ(e.decode(), g);
  EXPECT_EQ(e.wire_bytes, 8 + 400);
  EXPECT_NEAR(e.compression_ratio(), 1.0, 0.05);
}

TEST(TopKCodec, KeepsExactlyKEntries) {
  auto g = random_grad(1000, 3);
  Rng rng(4);
  TopKCodec codec(10.0);
  auto e = codec.encode(g, rng);
  EXPECT_EQ(e.indices.size(), 100u);
  EXPECT_EQ(e.values.size(), 100u);
}

TEST(TopKCodec, SelectsLargestMagnitudes) {
  std::vector<float> g{0.1f, -5.0f, 0.2f, 4.0f, -0.3f, 0.05f};
  Rng rng(5);
  TopKCodec codec(3.0);  // keep 2 of 6
  auto e = codec.encode(g, rng);
  auto d = e.decode();
  EXPECT_EQ(d[1], -5.0f);
  EXPECT_EQ(d[3], 4.0f);
  EXPECT_EQ(d[0], 0.0f);
  EXPECT_EQ(d[2], 0.0f);
}

TEST(TopKCodec, WireBytesAndRatio) {
  auto g = random_grad(1000, 6);
  Rng rng(7);
  TopKCodec codec(100.0);
  auto e = codec.encode(g, rng);
  EXPECT_EQ(e.wire_bytes, 8 + 10 * 8);
  // 4000 bytes dense / 88 wire.
  EXPECT_NEAR(e.compression_ratio(), 4000.0 / 88.0, 1e-9);
}

TEST(TopKCodec, RatioBelowOneThrows) {
  EXPECT_THROW(TopKCodec(0.5), CheckError);
}

TEST(TopKCodec, AlwaysSendsAtLeastOne) {
  auto g = random_grad(3, 8);
  Rng rng(9);
  TopKCodec codec(1000.0);
  auto e = codec.encode(g, rng);
  EXPECT_EQ(e.indices.size(), 1u);
}

TEST(QsgdCodec, DecodedIsApproximatelyUnbiased) {
  // With s = 64 levels the per-coordinate quantum is ||g||/64 ~ 0.7; the
  // mean over 60 stochastic encodings then estimates g to a few percent.
  auto g = random_grad(2000, 10);
  Rng rng(11);
  QsgdCodec codec(64);
  // Average many stochastic encodings; expectation should approach g.
  std::vector<double> acc(g.size(), 0.0);
  constexpr int reps = 60;
  for (int r = 0; r < reps; ++r) {
    auto d = codec.encode(g, rng).decode();
    for (std::size_t i = 0; i < g.size(); ++i) acc[i] += d[i];
  }
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const double mean = acc[i] / reps;
    err += (mean - g[i]) * (mean - g[i]);
    norm += static_cast<double>(g[i]) * g[i];
  }
  EXPECT_LT(std::sqrt(err / norm), 0.15);
}

TEST(QsgdCodec, LevelsBoundedByS) {
  auto g = random_grad(500, 12);
  Rng rng(13);
  QsgdCodec codec(4);
  auto e = codec.encode(g, rng);
  for (auto l : e.levels) {
    EXPECT_LE(l, 4);
    EXPECT_GE(l, -4);
  }
}

TEST(QsgdCodec, WireBytesUseBitPacking) {
  auto g = random_grad(1000, 14);
  Rng rng(15);
  QsgdCodec codec(7);  // 2s+1 = 15 -> 4 bits/element
  auto e = codec.encode(g, rng);
  EXPECT_EQ(e.wire_bytes, 8 + 4 + (1000 * 4 + 7) / 8);
}

TEST(QsgdCodec, InvalidLevelsThrow) {
  EXPECT_THROW(QsgdCodec(0), CheckError);
  EXPECT_THROW(QsgdCodec(200), CheckError);
}

TEST(QsgdCodec, ZeroVectorEncodesToZeros) {
  std::vector<float> g(64, 0.0f);
  Rng rng(16);
  QsgdCodec codec(4);
  auto d = codec.encode(g, rng).decode();
  for (float v : d) EXPECT_EQ(v, 0.0f);
}

TEST(TernaryCodec, ValuesAreTernary) {
  auto g = random_grad(500, 17);
  Rng rng(18);
  TernaryCodec codec;
  auto e = codec.encode(g, rng);
  float mx = 0.0f;
  for (float v : g) mx = std::max(mx, std::abs(v));
  auto d = e.decode();
  for (float v : d)
    EXPECT_TRUE(v == 0.0f || std::abs(std::abs(v) - mx) < 1e-6);
}

TEST(TernaryCodec, SignsPreserved) {
  std::vector<float> g{10.0f, -10.0f};
  Rng rng(19);
  TernaryCodec codec;
  auto d = codec.encode(g, rng).decode();
  EXPECT_GT(d[0], 0.0f);  // p = |g|/max = 1, always fires
  EXPECT_LT(d[1], 0.0f);
}

TEST(TernaryCodec, TwoBitsPerElement) {
  auto g = random_grad(1000, 20);
  Rng rng(21);
  TernaryCodec codec;
  auto e = codec.encode(g, rng);
  EXPECT_EQ(e.wire_bytes, 8 + 4 + (2000 + 7) / 8);
}

TEST(TopKHelper, RejectsBadK) {
  std::vector<float> g{1, 2, 3};
  EXPECT_THROW(top_k_by_magnitude(g, 0), CheckError);
  EXPECT_THROW(top_k_by_magnitude(g, 4), CheckError);
}

TEST(TopKHelper, ReturnsSortedIndices) {
  auto g = random_grad(512, 24);
  const auto idx = top_k_by_magnitude(g, 37);
  ASSERT_EQ(idx.size(), 37u);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
}

TEST(TopKHelper, TiesBreakByLowestIndex) {
  // Four entries share the winning magnitude; with k=2 the selection must be
  // the two LOWEST indices regardless of the partial-sort's internal order.
  std::vector<float> g{0.1f, 2.0f, -2.0f, 0.1f, 2.0f, -2.0f};
  const auto idx = top_k_by_magnitude(g, 2);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 2}));
}

TEST(TopKCodec, EncodedIndicesAreSorted) {
  auto g = random_grad(2048, 25);
  Rng rng(26);
  TopKCodec codec(16.0);
  auto e = codec.encode(g, rng);
  EXPECT_TRUE(std::is_sorted(e.indices.begin(), e.indices.end()));
}

TEST(EncodedGradient, RatioOnEmptyMessageThrows) {
  EncodedGradient e;
  EXPECT_THROW(e.compression_ratio(), CheckError);
}

// Parameterized ratio sweep: decode support size and wire size shrink
// monotonically with ratio.
class TopKRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(TopKRatioTest, SupportMatchesRatio) {
  const double ratio = GetParam();
  auto g = random_grad(4200, 22);
  Rng rng(23);
  TopKCodec codec(ratio);
  auto e = codec.encode(g, rng);
  const auto expected =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(4200 / ratio));
  EXPECT_EQ(static_cast<std::int64_t>(e.indices.size()), expected);
  EXPECT_EQ(e.dense_size, 4200);
}

INSTANTIATE_TEST_SUITE_P(Ratios, TopKRatioTest,
                         ::testing::Values(1.0, 4.0, 16.0, 64.0, 210.0,
                                           10000.0));

}  // namespace
}  // namespace adafl::compress
