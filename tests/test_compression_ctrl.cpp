#include "core/compression_ctrl.h"

#include <gtest/gtest.h>

#include "tensor/check.h"

namespace adafl::core {
namespace {

CompressionCtrlConfig cfg(double rmin, double rmax, int warm,
                          double shaping = 1.0) {
  CompressionCtrlConfig c;
  c.ratio_min = rmin;
  c.ratio_max = rmax;
  c.warmup_rounds = warm;
  c.shaping = shaping;
  return c;
}

TEST(CompressionController, WarmupPinsMinimumRatio) {
  CompressionController ctrl(cfg(4, 210, 3));
  EXPECT_TRUE(ctrl.in_warmup(1));
  EXPECT_TRUE(ctrl.in_warmup(3));
  EXPECT_FALSE(ctrl.in_warmup(4));
  EXPECT_DOUBLE_EQ(ctrl.ratio_for(0.0, 2), 4.0);
}

TEST(CompressionController, EndpointsMapToBounds) {
  CompressionController ctrl(cfg(4, 210, 0));
  EXPECT_NEAR(ctrl.ratio_for(1.0, 1), 4.0, 1e-9);
  EXPECT_NEAR(ctrl.ratio_for(0.0, 1), 210.0, 1e-9);
}

TEST(CompressionController, MonotoneDecreasingInScore) {
  CompressionController ctrl(cfg(4, 210, 0, 3.0));
  double prev = 1e18;
  for (double s = 0.0; s <= 1.0; s += 0.1) {
    const double r = ctrl.ratio_for(s, 1);
    EXPECT_LE(r, prev + 1e-9);
    EXPECT_GE(r, 4.0 - 1e-9);
    EXPECT_LE(r, 210.0 + 1e-9);
    prev = r;
  }
}

TEST(CompressionController, ShapingBendsTowardMinRatio) {
  CompressionController linear(cfg(4, 210, 0, 1.0));
  CompressionController shaped(cfg(4, 210, 0, 3.0));
  // Mid-utility clients get much less compression with shaping > 1.
  EXPECT_LT(shaped.ratio_for(0.5, 1), linear.ratio_for(0.5, 1));
  // Endpoints are unchanged.
  EXPECT_NEAR(shaped.ratio_for(0.0, 1), 210.0, 1e-9);
  EXPECT_NEAR(shaped.ratio_for(1.0, 1), 4.0, 1e-9);
}

TEST(CompressionController, DegenerateEqualBounds) {
  CompressionController ctrl(cfg(8, 8, 0));
  EXPECT_DOUBLE_EQ(ctrl.ratio_for(0.3, 1), 8.0);
}

TEST(CompressionController, InvalidConfigThrows) {
  EXPECT_THROW(CompressionController(cfg(0.5, 10, 0)), CheckError);
  EXPECT_THROW(CompressionController(cfg(10, 5, 0)), CheckError);
  EXPECT_THROW(CompressionController(cfg(4, 210, -1)), CheckError);
  EXPECT_THROW(CompressionController(cfg(4, 210, 0, 0.0)), CheckError);
}

TEST(CompressionController, InvalidQueryThrows) {
  CompressionController ctrl(cfg(4, 210, 0));
  EXPECT_THROW(ctrl.ratio_for(-0.1, 1), CheckError);
  EXPECT_THROW(ctrl.ratio_for(1.1, 1), CheckError);
  EXPECT_THROW(ctrl.ratio_for(0.5, 0), CheckError);
}

}  // namespace
}  // namespace adafl::core
