#include "data/dataset.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace adafl::data {
namespace {

using tensor::Rng;
using tensor::Tensor;

Dataset tiny_dataset() {
  // 6 images of 1x2x2, pixel values = 10*i + k.
  Tensor images({6, 1, 2, 2});
  for (std::int64_t i = 0; i < 6; ++i)
    for (std::int64_t k = 0; k < 4; ++k)
      images[i * 4 + k] = static_cast<float>(10 * i + k);
  return Dataset(std::move(images), {0, 1, 2, 0, 1, 2});
}

TEST(Dataset, SizeAndSpec) {
  Dataset ds = tiny_dataset();
  EXPECT_EQ(ds.size(), 6);
  const auto spec = ds.spec();
  EXPECT_EQ(spec.channels, 1);
  EXPECT_EQ(spec.height, 2);
  EXPECT_EQ(spec.width, 2);
  EXPECT_EQ(spec.classes, 3);
}

TEST(Dataset, LabelCountMismatchThrows) {
  Tensor images({2, 1, 2, 2});
  EXPECT_THROW(Dataset(std::move(images), {0}), CheckError);
}

TEST(Dataset, NonImageRankThrows) {
  Tensor images({2, 4});
  EXPECT_THROW(Dataset(std::move(images), {0, 1}), CheckError);
}

TEST(Dataset, GatherCopiesSelectedExamples) {
  Dataset ds = tiny_dataset();
  std::vector<std::int32_t> idx{4, 0};
  auto b = ds.gather(idx);
  EXPECT_EQ(b.size(), 2);
  EXPECT_EQ(b.labels[0], 1);
  EXPECT_EQ(b.labels[1], 0);
  EXPECT_FLOAT_EQ(b.inputs[0], 40.0f);  // first pixel of image 4
  EXPECT_FLOAT_EQ(b.inputs[4], 0.0f);   // first pixel of image 0
}

TEST(Dataset, GatherOutOfRangeThrows) {
  Dataset ds = tiny_dataset();
  std::vector<std::int32_t> idx{6};
  EXPECT_THROW(ds.gather(idx), CheckError);
  std::vector<std::int32_t> neg{-1};
  EXPECT_THROW(ds.gather(neg), CheckError);
}

TEST(Dataset, AllReturnsWholeSet) {
  Dataset ds = tiny_dataset();
  auto b = ds.all();
  EXPECT_EQ(b.size(), 6);
  EXPECT_EQ(b.labels, ds.labels());
}

TEST(BatchLoader, CoversEveryExampleEachEpoch) {
  Dataset ds = tiny_dataset();
  std::vector<std::int32_t> idx{0, 1, 2, 3, 4, 5};
  BatchLoader loader(&ds, idx, 2, Rng(1));
  std::multiset<float> seen;
  for (int b = 0; b < 3; ++b) {
    auto batch = loader.next();
    for (std::int64_t i = 0; i < batch.size(); ++i)
      seen.insert(batch.inputs[i * 4]);  // first pixel identifies image
  }
  EXPECT_EQ(seen.size(), 6u);
  for (std::int64_t i = 0; i < 6; ++i)
    EXPECT_EQ(seen.count(static_cast<float>(10 * i)), 1u);
}

TEST(BatchLoader, WrapsWithReshuffle) {
  Dataset ds = tiny_dataset();
  std::vector<std::int32_t> idx{0, 1, 2, 3, 4, 5};
  BatchLoader loader(&ds, idx, 4, Rng(2));
  auto b1 = loader.next();
  EXPECT_EQ(b1.size(), 4);
  auto b2 = loader.next();  // remainder of epoch
  EXPECT_EQ(b2.size(), 2);
  auto b3 = loader.next();  // new epoch
  EXPECT_EQ(b3.size(), 4);
}

TEST(BatchLoader, DeterministicUnderSeed) {
  Dataset ds = tiny_dataset();
  std::vector<std::int32_t> idx{0, 1, 2, 3, 4, 5};
  BatchLoader a(&ds, idx, 2, Rng(3));
  BatchLoader b(&ds, idx, 2, Rng(3));
  for (int i = 0; i < 5; ++i) {
    auto ba = a.next(), bb = b.next();
    EXPECT_EQ(ba.labels, bb.labels);
  }
}

TEST(BatchLoader, SubsetRestrictsExamples) {
  Dataset ds = tiny_dataset();
  std::vector<std::int32_t> idx{1, 3};
  BatchLoader loader(&ds, idx, 2, Rng(4));
  for (int e = 0; e < 4; ++e) {
    auto b = loader.next();
    for (auto l : b.labels) EXPECT_TRUE(l == 1 || l == 0);
  }
  EXPECT_EQ(loader.num_examples(), 2);
  EXPECT_EQ(loader.batches_per_epoch(), 1);
}

TEST(BatchLoader, EmptyIndexListThrows) {
  Dataset ds = tiny_dataset();
  EXPECT_THROW(BatchLoader(&ds, {}, 2, Rng(1)), CheckError);
}

TEST(BatchLoader, BatchesPerEpochRoundsUp) {
  Dataset ds = tiny_dataset();
  std::vector<std::int32_t> idx{0, 1, 2, 3, 4};
  BatchLoader loader(&ds, idx, 2, Rng(1));
  EXPECT_EQ(loader.batches_per_epoch(), 3);
}

}  // namespace
}  // namespace adafl::data
