// Unified determinism matrix: every trainer in the library must be
// bit-reproducible under a fixed seed and must actually vary when the seed
// changes (i.e. the seed is wired through, not ignored).
#include <gtest/gtest.h>

#include "core/adafl_async.h"
#include "core/adafl_sync.h"
#include "core/parallel.h"
#include "fl/async_trainer.h"
#include "fl/fedat.h"
#include "fl/sync_trainer.h"
#include "fl_fixtures.h"

namespace adafl {
namespace {

using fl::testing::make_mini_task;

struct RunSignature {
  std::vector<double> accuracies;
  std::int64_t upload_bytes = 0;

  bool operator==(const RunSignature&) const = default;
};

RunSignature signature(const fl::TrainLog& log) {
  RunSignature s;
  for (const auto& r : log.records) s.accuracies.push_back(r.test_accuracy);
  s.upload_bytes = log.ledger.total_upload_bytes();
  return s;
}

class DeterminismMatrix : public ::testing::TestWithParam<int> {
 public:
  static RunSignature run(int kind, std::uint64_t seed) {
    auto task = make_mini_task(4);
    switch (kind) {
      case 0: {  // SyncTrainer (FedAvg, faults on to exercise fault RNG)
        fl::SyncConfig cfg;
        cfg.rounds = 6;
        cfg.participation = 0.75;
        cfg.client = task.client;
        cfg.faults.kind = fl::FaultKind::kDropout;
        cfg.faults.unreliable_fraction = 0.5;
        cfg.seed = seed;
        return signature(fl::SyncTrainer(cfg, task.factory, &task.train,
                                         task.parts, &task.test)
                             .run());
      }
      case 1: {  // AsyncTrainer (FedBuff)
        fl::AsyncConfig cfg;
        cfg.algo = fl::AsyncAlgorithm::kFedBuff;
        cfg.duration = 1.5;
        cfg.eval_interval = 0.5;
        cfg.buffer_size = 3;
        cfg.client = task.client;
        cfg.seed = seed;
        return signature(fl::AsyncTrainer(cfg, task.factory, &task.train,
                                          task.parts, &task.test)
                             .run());
      }
      case 2: {  // FedAT
        fl::FedAtConfig cfg;
        cfg.num_tiers = 2;
        cfg.duration = 1.5;
        cfg.eval_interval = 0.5;
        cfg.client = task.client;
        cfg.seed = seed;
        std::vector<fl::DeviceProfile> devices{
            fl::straggler(fl::workstation(), 3.0),
            fl::straggler(fl::workstation(), 3.0), fl::workstation(),
            fl::workstation()};
        return signature(fl::FedAtTrainer(cfg, task.factory, &task.train,
                                          task.parts, &task.test, devices)
                             .run());
      }
      case 3: {  // AdaFL sync with links (exercises link RNG too)
        core::AdaFlSyncConfig cfg;
        cfg.rounds = 6;
        cfg.client = task.client;
        cfg.links = net::make_fleet(4, 0.5, net::LinkQuality::kGood,
                                    net::LinkQuality::kLossy);
        cfg.seed = seed;
        cfg.params.compression.warmup_rounds = 2;
        return signature(core::AdaFlSyncTrainer(cfg, task.factory,
                                                &task.train, task.parts,
                                                &task.test)
                             .run());
      }
      default: {  // AdaFL async
        core::AdaFlAsyncConfig cfg;
        cfg.duration = 1.5;
        cfg.eval_interval = 0.5;
        cfg.client = task.client;
        cfg.seed = seed;
        cfg.params.compression.warmup_rounds = 2;
        return signature(core::AdaFlAsyncTrainer(cfg, task.factory,
                                                 &task.train, task.parts,
                                                 &task.test)
                             .run());
      }
    }
  }
};

TEST_P(DeterminismMatrix, SameSeedBitIdentical) {
  EXPECT_EQ(run(GetParam(), 7), run(GetParam(), 7));
}

TEST_P(DeterminismMatrix, DifferentSeedDiffers) {
  EXPECT_NE(run(GetParam(), 7), run(GetParam(), 1234567));
}

std::string trainer_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"Sync", "Async", "FedAt", "AdaFlSync",
                                       "AdaFlAsync"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllTrainers, DeterminismMatrix,
                         ::testing::Range(0, 5), trainer_name);

// ---------------------------------------------------------------------------
// Thread sweep: the execution layer's core promise is that parallelism is an
// implementation detail — the same config at 1, 2, or 4 worker threads must
// produce byte-for-byte the same final global weights AND the same metric
// ledger. Signature alone is not enough: two runs could match on accuracy yet
// diverge in low-order weight bits, so we compare the raw parameter vectors.
// ---------------------------------------------------------------------------

struct FullResult {
  RunSignature sig;
  std::vector<float> weights;

  bool operator==(const FullResult&) const = default;
};

/// Restores the automatic pool size even when an assertion fails mid-test.
struct ThreadGuard {
  ~ThreadGuard() { core::set_num_threads(0); }
};

class ThreadSweepMatrix : public ::testing::TestWithParam<int> {
 public:
  static FullResult run(int kind, int threads) {
    core::set_num_threads(threads);
    auto task = make_mini_task(4);
    const std::uint64_t seed = 7;
    switch (kind) {
      case 0: {  // FedAvg + dropout faults + lossy links: exercises the
                 // 3-phase sync round's fault and link RNG ordering.
        fl::SyncConfig cfg;
        cfg.rounds = 4;
        cfg.participation = 0.75;
        cfg.client = task.client;
        cfg.faults.kind = fl::FaultKind::kDropout;
        cfg.faults.unreliable_fraction = 0.5;
        cfg.links = net::make_fleet(4, 0.5, net::LinkQuality::kGood,
                                    net::LinkQuality::kLossy);
        cfg.seed = seed;
        fl::SyncTrainer t(cfg, task.factory, &task.train, task.parts,
                          &task.test);
        const auto log = t.run();
        return {signature(log), t.global()};
      }
      case 1: {  // SCAFFOLD + byzantine clients + trimmed mean: exercises the
                 // control-variate path and the robust aggregation sort.
        fl::SyncConfig cfg;
        cfg.algo = fl::Algorithm::kScaffold;
        cfg.rounds = 4;
        cfg.client = task.client;
        cfg.aggregation = fl::Aggregation::kTrimmedMean;
        cfg.faults.kind = fl::FaultKind::kByzantine;
        cfg.faults.unreliable_fraction = 0.25;
        cfg.seed = seed;
        fl::SyncTrainer t(cfg, task.factory, &task.train, task.parts,
                          &task.test);
        const auto log = t.run();
        return {signature(log), t.global()};
      }
      case 2: {  // FedBuff: buffered async aggregation with pooled training.
        fl::AsyncConfig cfg;
        cfg.algo = fl::AsyncAlgorithm::kFedBuff;
        cfg.duration = 1.5;
        cfg.eval_interval = 0.5;
        cfg.buffer_size = 3;
        cfg.client = task.client;
        cfg.seed = seed;
        fl::AsyncTrainer t(cfg, task.factory, &task.train, task.parts,
                           &task.test);
        const auto log = t.run();
        return {signature(log), t.global()};
      }
      case 3: {  // FedAsync with lossy links: failed uploads schedule retry
                 // cycles, so in-flight task handoff must stay deterministic.
        fl::AsyncConfig cfg;
        cfg.algo = fl::AsyncAlgorithm::kFedAsync;
        cfg.duration = 1.5;
        cfg.eval_interval = 0.5;
        cfg.client = task.client;
        cfg.links = net::make_fleet(4, 0.5, net::LinkQuality::kGood,
                                    net::LinkQuality::kLossy);
        cfg.seed = seed;
        fl::AsyncTrainer t(cfg, task.factory, &task.train, task.parts,
                           &task.test);
        const auto log = t.run();
        return {signature(log), t.global()};
      }
      case 4: {  // AdaFL sync (selection + compression on top of the pool).
        core::AdaFlSyncConfig cfg;
        cfg.rounds = 4;
        cfg.client = task.client;
        cfg.seed = seed;
        cfg.params.compression.warmup_rounds = 2;
        core::AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts,
                                 &task.test);
        const auto log = t.run();
        return {signature(log), t.global()};
      }
      default: {  // AdaFL async
        core::AdaFlAsyncConfig cfg;
        cfg.duration = 1.5;
        cfg.eval_interval = 0.5;
        cfg.client = task.client;
        cfg.seed = seed;
        cfg.params.compression.warmup_rounds = 2;
        core::AdaFlAsyncTrainer t(cfg, task.factory, &task.train, task.parts,
                                  &task.test);
        const auto log = t.run();
        return {signature(log), t.global()};
      }
    }
  }
};

TEST_P(ThreadSweepMatrix, BitwiseIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const auto base = run(GetParam(), 1);
  ASSERT_FALSE(base.weights.empty());
  for (int threads : {2, 4}) {
    const auto got = run(GetParam(), threads);
    EXPECT_EQ(base.sig, got.sig) << "metric ledger diverged at threads="
                                 << threads;
    EXPECT_EQ(base.weights, got.weights)
        << "final global weights diverged at threads=" << threads;
  }
}

std::string sweep_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"FedAvgFaultsLinks", "ScaffoldRobust",
                                       "FedBuff",           "FedAsyncLossy",
                                       "AdaFlSync",         "AdaFlAsync"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllTrainers, ThreadSweepMatrix, ::testing::Range(0, 6),
                         sweep_name);

}  // namespace
}  // namespace adafl
