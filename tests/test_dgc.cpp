#include "compress/dgc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.h"

namespace adafl::compress {
namespace {

using tensor::Rng;

DgcConfig plain_config(double ratio) {
  DgcConfig cfg;
  cfg.ratio = ratio;
  cfg.momentum = 0.0f;
  cfg.clip_norm = 0.0;
  cfg.momentum_correction = false;
  return cfg;
}

std::vector<float> random_grad(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> g(n);
  for (auto& v : g) v = static_cast<float>(rng.normal());
  return g;
}

TEST(Dgc, SendsTopKOfAccumulatedState) {
  DgcCompressor c(8, plain_config(4.0));  // k = 2
  std::vector<float> g{1, 0, 0, 0, -3, 0, 2, 0};
  auto e = c.compress(g);
  auto d = e.decode();
  EXPECT_EQ(d[4], -3.0f);
  EXPECT_EQ(d[6], 2.0f);
  EXPECT_EQ(d[0], 0.0f);  // below top-2, retained as residual
}

TEST(Dgc, ErrorFeedbackConservesMass) {
  // Without momentum: sum of everything sent + residual == sum of inputs.
  DgcCompressor c(64, plain_config(8.0));
  std::vector<double> total_in(64, 0.0), total_sent(64, 0.0);
  for (int round = 0; round < 20; ++round) {
    auto g = random_grad(64, 100 + static_cast<std::uint64_t>(round));
    for (std::size_t i = 0; i < 64; ++i) total_in[i] += g[i];
    auto d = c.compress(g).decode();
    for (std::size_t i = 0; i < 64; ++i) total_sent[i] += d[i];
  }
  // residual = total_in - total_sent must match residual_norm().
  double res2 = 0.0;
  for (std::size_t i = 0; i < 64; ++i) {
    const double r = total_in[i] - total_sent[i];
    res2 += r * r;
  }
  EXPECT_NEAR(std::sqrt(res2), c.residual_norm(), 1e-3);
}

TEST(Dgc, EverythingEventuallyFlushes) {
  // Feed one gradient, then zeros; after enough rounds the full vector has
  // been transmitted and the residual is empty.
  DgcCompressor c(16, plain_config(8.0));  // k = 2 per round
  auto g = random_grad(16, 5);
  std::vector<float> zeros(16, 0.0f);
  std::vector<double> sent(16, 0.0);
  for (auto d = c.compress(g).decode(); true; d = c.compress(zeros).decode()) {
    for (std::size_t i = 0; i < 16; ++i) sent[i] += d[i];
    if (c.residual_norm() < 1e-7) break;
  }
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(sent[i], g[i], 1e-5);
}

TEST(Dgc, ClippingBoundsAccumulatedIncrement) {
  DgcConfig cfg = plain_config(1.0);  // dense send
  cfg.clip_norm = 1.0;
  DgcCompressor c(4, cfg);
  std::vector<float> g{10, 0, 0, 0};  // norm 10 -> clipped to norm 1
  auto d = c.compress(g).decode();
  EXPECT_NEAR(tensor::l2_norm(d), 1.0, 1e-5);
}

TEST(Dgc, MomentumCorrectionAmplifiesUnsentCoordinates) {
  // A coordinate repeatedly below the top-k accumulates with momentum:
  // after two rounds of g=1 its velocity is 1 + (0.9 + 1) = 2.9 instead of
  // the momentum-free 2.0.
  DgcConfig cfg;
  cfg.ratio = 2.0;  // k = 1 of 2; coord 0 dominates every round
  cfg.momentum = 0.9f;
  cfg.momentum_correction = true;
  cfg.clip_norm = 0.0;
  DgcCompressor c(2, cfg);
  std::vector<float> g{5.0f, 1.0f};
  c.compress(g);  // sends coord 0
  c.compress(g);  // sends coord 0 again; coord 1 keeps accumulating
  std::vector<float> zeros{0.0f, 0.0f};
  auto d = c.compress(zeros).decode();  // now coord 1 wins
  EXPECT_EQ(d[0], 0.0f);
  EXPECT_NEAR(d[1], 1.0f + 0.9f + 1.0f + 0.81f + 0.9f, 1e-4);
}

TEST(Dgc, MomentumMaskingClearsSentCoordinates) {
  DgcConfig cfg;
  cfg.ratio = 2.0;  // k=1 of 2
  cfg.momentum = 0.9f;
  cfg.momentum_correction = true;
  cfg.clip_norm = 0.0;
  DgcCompressor c(2, cfg);
  // Coord 0 dominates and is sent; its u and v must be cleared.
  std::vector<float> g{5.0f, 1.0f};
  auto e = c.compress(g);
  ASSERT_EQ(e.indices.size(), 1u);
  EXPECT_EQ(e.indices[0], 0u);
  // Next round both coords get zero gradient: only coord 1's residual (with
  // momentum) remains.
  std::vector<float> zeros{0.0f, 0.0f};
  auto d = c.compress(zeros).decode();
  EXPECT_EQ(d[0], 0.0f);
  EXPECT_GT(d[1], 1.0f);  // 1 + 0.9*1 accumulated
}

TEST(Dgc, RatioOverrideChangesSupportSize) {
  DgcCompressor c(100, plain_config(10.0));
  auto g = random_grad(100, 7);
  auto e1 = c.compress(g);  // default ratio 10 -> k=10
  EXPECT_EQ(e1.indices.size(), 10u);
  auto e2 = c.compress(g, 50.0);  // override -> k=2
  EXPECT_EQ(e2.indices.size(), 2u);
}

TEST(Dgc, AccumulateTransmitsNothingButKeepsMass) {
  DgcCompressor c(8, plain_config(2.0));
  auto g = random_grad(8, 9);
  c.accumulate(g);
  EXPECT_NEAR(c.residual_norm(), tensor::l2_norm(g), 1e-5);
  // A later compress of zeros flushes the accumulated top-k.
  std::vector<float> zeros(8, 0.0f);
  auto d = c.compress(zeros).decode();
  EXPECT_GT(tensor::l2_norm(d), 0.0);
}

TEST(Dgc, ResetClearsState) {
  DgcCompressor c(8, plain_config(2.0));
  c.accumulate(random_grad(8, 10));
  c.reset();
  EXPECT_EQ(c.residual_norm(), 0.0);
}

TEST(Dgc, WrongLengthThrows) {
  DgcCompressor c(8, plain_config(2.0));
  std::vector<float> g(4, 1.0f);
  EXPECT_THROW(c.compress(g), CheckError);
  EXPECT_THROW(c.accumulate(g), CheckError);
}

TEST(Dgc, InvalidConfigThrows) {
  EXPECT_THROW(DgcCompressor(0, plain_config(2.0)), CheckError);
  EXPECT_THROW(DgcCompressor(8, plain_config(0.5)), CheckError);
  DgcConfig bad = plain_config(2.0);
  bad.momentum = 1.0f;
  EXPECT_THROW(DgcCompressor(8, bad), CheckError);
  DgcCompressor c(8, plain_config(2.0));
  std::vector<float> g(8, 1.0f);
  EXPECT_THROW(c.compress(g, 0.5), CheckError);
}

}  // namespace
}  // namespace adafl::compress
