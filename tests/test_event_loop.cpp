// EventLoop: the epoll transport that lets one server thread own 10,000
// sockets. These tests pin the properties the session relies on — frames
// arrive intact and attributed to the right connection, backpressure bounds
// the shard queues instead of growing server memory, accept respects
// max_clients, malformed streams and dead consumers are dropped (never the
// process), and the hot path does zero tensor heap allocations.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "net/transport/event_loop.h"
#include "net/transport/tcp.h"
#include "tensor/check.h"
#include "tensor/tensor.h"

namespace adafl::net::transport {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

Frame small_frame(std::uint32_t round, std::uint32_t client,
                  std::uint8_t fill = 0, std::size_t payload = 8) {
  Frame f;
  f.type = MsgType::kScore;
  f.round = round;
  f.client_id = client;
  f.payload.assign(payload, fill);
  return f;
}

/// Polls the loop until `n` frames arrived or `deadline` passed.
std::vector<InFrame> poll_until(EventLoop& loop, std::size_t n,
                                std::chrono::milliseconds deadline = 5000ms) {
  std::vector<InFrame> got;
  const auto until = Clock::now() + deadline;
  while (got.size() < n && Clock::now() < until) {
    if (loop.poll_all(got) == 0) loop.wait_activity(20ms);
  }
  return got;
}

/// Waits until `pred()` holds or `deadline` passed; returns pred().
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds deadline = 5000ms) {
  const auto until = Clock::now() + deadline;
  while (!pred()) {
    if (Clock::now() >= until) return false;
    std::this_thread::sleep_for(2ms);
  }
  return true;
}

TEST(EventLoop, AcceptDeliverRespond) {
  TcpListener listener(0);
  EventLoopConfig cfg;
  cfg.shards = 2;
  EventLoop loop(cfg);
  loop.adopt_listener(listener.fd());
  loop.start();

  auto c0 = TcpTransport::connect("127.0.0.1", listener.port(), 1000ms);
  auto c1 = TcpTransport::connect("127.0.0.1", listener.port(), 1000ms);
  ASSERT_TRUE(c0 && c1);
  ASSERT_TRUE(c0->send(small_frame(1, 100, 0xA0)));
  ASSERT_TRUE(c1->send(small_frame(1, 101, 0xB1)));
  ASSERT_TRUE(c0->send(small_frame(2, 100, 0xA2)));

  auto got = poll_until(loop, 3);
  ASSERT_EQ(got.size(), 3u);
  // Conn attribution: the two frames claiming client 100 share a ConnId,
  // client 101's differs.
  std::map<std::uint32_t, ConnId> by_client;
  for (const InFrame& inf : got) {
    auto [it, fresh] = by_client.emplace(inf.frame.client_id, inf.conn);
    if (!fresh) {
      EXPECT_EQ(it->second, inf.conn);
    }
  }
  EXPECT_EQ(by_client.size(), 2u);
  EXPECT_NE(by_client[100], by_client[101]);
  EXPECT_EQ(loop.open_connections(), 2u);

  // Respond with ONE shared buffer queued to both connections (the MODEL
  // broadcast shape) and check both peers receive the identical frame.
  const Frame resp = small_frame(3, kServerId, 0xC3, 64);
  auto bytes = std::make_shared<const std::vector<std::uint8_t>>(
      encode_frame(resp));
  loop.send(by_client[100], bytes);
  loop.send(by_client[101], bytes);
  EXPECT_TRUE(loop.flush(2000ms));
  for (TcpTransport* c : {c0.get(), c1.get()}) {
    auto f = c->recv(2000ms);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->round, resp.round);
    EXPECT_EQ(f->payload, resp.payload);
  }

  // close_conn surfaces in take_closed and drops the count.
  loop.close_conn(by_client[100]);
  EXPECT_TRUE(eventually([&] {
    auto closed = loop.take_closed();
    return std::find(closed.begin(), closed.end(), by_client[100]) !=
           closed.end();
  }));
  EXPECT_EQ(loop.open_connections(), 1u);
  loop.stop();
}

TEST(EventLoop, MaxClientsPausesAcceptUntilAConnCloses) {
  TcpListener listener(0);
  EventLoopConfig cfg;
  cfg.max_clients = 2;
  EventLoop loop(cfg);
  loop.adopt_listener(listener.fd());
  loop.start();

  auto c0 = TcpTransport::connect("127.0.0.1", listener.port(), 1000ms);
  auto c1 = TcpTransport::connect("127.0.0.1", listener.port(), 1000ms);
  ASSERT_TRUE(c0 && c1);
  ASSERT_TRUE(eventually([&] { return loop.open_connections() == 2u; }));

  // The third connect succeeds at the TCP level (kernel backlog) but the
  // loop must not accept it while at the cap.
  auto c2 = TcpTransport::connect("127.0.0.1", listener.port(), 1000ms);
  ASSERT_TRUE(c2);
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(loop.open_connections(), 2u);

  // Freeing a slot lets the parked connection in; its frames then flow.
  c0->close();
  ASSERT_TRUE(eventually([&] {
    loop.take_closed();
    return loop.open_connections() == 2u && !loop.take_accepted().empty();
  }));
  ASSERT_TRUE(c2->send(small_frame(1, 42)));
  auto got = poll_until(loop, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].frame.client_id, 42u);
  loop.stop();
}

// The backpressure satellite: a shard the session never drains stalls its
// connections' reads — bounded queue, bounded memory — and once draining
// starts every frame sent arrives intact. Steady-state operation does zero
// tensor heap allocations.
TEST(EventLoop, BackpressureBoundsQueueThenDeliversEverything) {
  TcpListener listener(0);
  EventLoopConfig cfg;
  cfg.shards = 1;
  cfg.queue_depth = 8;
  cfg.read_budget = 4096;  // small so one cycle cannot swallow the burst
  EventLoop loop(cfg);
  loop.adopt_listener(listener.fd());
  loop.start();

  auto c = TcpTransport::connect("127.0.0.1", listener.port(), 1000ms);
  ASSERT_TRUE(c);
  constexpr int kFrames = 600;
  std::thread sender([&] {
    // TcpTransport::send blocks once kernel buffers fill behind the paused
    // reader, then unblocks as the main thread drains — exactly the
    // sender-side stall backpressure is meant to produce.
    for (int i = 0; i < kFrames; ++i)
      ASSERT_TRUE(c->send(small_frame(static_cast<std::uint32_t>(i), 7,
                                      static_cast<std::uint8_t>(i))));
  });

  // Do not drain: the shard must saturate and pause the connection's reads.
  ASSERT_TRUE(eventually([&] { return loop.read_pauses() > 0; }));
  EXPECT_GE(loop.peak_queue_depth(), cfg.queue_depth);
  // Overshoot is bounded by what one read chunk can decode on top of an
  // almost-full queue — never proportional to the whole burst.
  const std::size_t max_overshoot = cfg.read_budget / kFrameHeaderBytes + 1;
  EXPECT_LE(loop.peak_queue_depth(), cfg.queue_depth + max_overshoot);

  // Steady-state drain must not touch the tensor heap.
  const std::uint64_t allocs_before = tensor::tensor_allocations();
  auto got = poll_until(loop, kFrames, 10000ms);
  EXPECT_EQ(tensor::tensor_allocations(), allocs_before);
  sender.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {  // in order, intact
    EXPECT_EQ(got[static_cast<std::size_t>(i)].frame.round,
              static_cast<std::uint32_t>(i));
    EXPECT_EQ(got[static_cast<std::size_t>(i)].frame.payload[0],
              static_cast<std::uint8_t>(i));
  }
  EXPECT_LE(loop.peak_queue_depth(), cfg.queue_depth + max_overshoot);
  loop.stop();
}

TEST(EventLoop, MalformedStreamDropsOnlyThatConnection) {
  TcpListener listener(0);
  EventLoop loop(EventLoopConfig{});
  loop.adopt_listener(listener.fd());
  loop.start();

  auto good = TcpTransport::connect("127.0.0.1", listener.port(), 1000ms);
  auto bad = TcpTransport::connect("127.0.0.1", listener.port(), 1000ms);
  ASSERT_TRUE(good && bad);
  ASSERT_TRUE(eventually([&] { return loop.open_connections() == 2u; }));

  ASSERT_TRUE(good->send(small_frame(1, 5)));
  auto got = poll_until(loop, 1);
  ASSERT_EQ(got.size(), 1u);
  const ConnId good_conn = got[0].conn;

  // One good frame first so we learn the corrupt connection's id, then an
  // invalid message type (transmitted fine — only the parser validates the
  // type byte). The resulting CheckError inside the loop thread must
  // translate to "drop that conn", never an exception out of the loop.
  ASSERT_TRUE(bad->send(small_frame(1, 6)));
  got = poll_until(loop, 1);
  ASSERT_EQ(got.size(), 1u);
  const ConnId bad_conn = got[0].conn;
  Frame invalid;
  invalid.type = static_cast<MsgType>(0xEE);
  invalid.round = 1;
  invalid.client_id = 6;
  EXPECT_TRUE(bad->send(invalid));
  EXPECT_TRUE(eventually([&] {
    auto closed = loop.take_closed();
    return std::find(closed.begin(), closed.end(), bad_conn) != closed.end();
  }));

  // The well-behaved connection is unaffected.
  ASSERT_TRUE(good->send(small_frame(4, 5)));
  got = poll_until(loop, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].conn, good_conn);
  loop.stop();
}

TEST(EventLoop, DeadConsumerIsDroppedOnOutbufOverflow) {
  TcpListener listener(0);
  EventLoopConfig cfg;
  cfg.max_outbuf_bytes = 64 * 1024;
  EventLoop loop(cfg);
  loop.adopt_listener(listener.fd());
  loop.start();

  auto c = TcpTransport::connect("127.0.0.1", listener.port(), 1000ms);
  ASSERT_TRUE(c);
  ASSERT_TRUE(c->send(small_frame(1, 3)));
  auto got = poll_until(loop, 1);
  ASSERT_EQ(got.size(), 1u);
  const ConnId conn = got[0].conn;

  // The client never reads. Kernel buffers fill, EPOLLOUT stops making
  // progress, the unsent backlog crosses max_outbuf_bytes, and the loop
  // drops the connection rather than buffering without bound.
  auto chunk = std::make_shared<const std::vector<std::uint8_t>>(
      encode_frame(small_frame(2, kServerId, 0x55, 32 * 1024)));
  for (int i = 0; i < 512; ++i) loop.send(conn, chunk);
  EXPECT_TRUE(eventually(
      [&] {
        auto closed = loop.take_closed();
        return std::find(closed.begin(), closed.end(), conn) != closed.end();
      },
      10000ms));
  EXPECT_EQ(loop.open_connections(), 0u);
  loop.stop();
}

TEST(EventLoop, WaitActivityTimesOutQuietAndWakesOnTraffic) {
  TcpListener listener(0);
  EventLoop loop(EventLoopConfig{});
  loop.adopt_listener(listener.fd());
  loop.start();

  const auto t0 = Clock::now();
  EXPECT_FALSE(loop.wait_activity(30ms));
  EXPECT_GE(Clock::now() - t0, 25ms);

  auto c = TcpTransport::connect("127.0.0.1", listener.port(), 1000ms);
  ASSERT_TRUE(c);
  EXPECT_TRUE(loop.wait_activity(2000ms));  // the accept is activity
  loop.stop();
}

}  // namespace
}  // namespace adafl::net::transport
