// ServerSession in event-loop mode (the flserver production path): the
// epoll loop owns the sockets, UPDATEs are decoded in parallel across
// shards, and apply_round aggregates in parallel over element ranges — yet
// the run must stay bitwise identical to the in-process simulator at every
// shard count and worker-thread count, survive a mid-round client crash,
// and populate the round-latency / frame-dispatch histograms.
#include <gtest/gtest.h>

#include <chrono>

#include "core/parallel.h"
#include "deployed_test_util.h"

namespace adafl::net::transport {
namespace {

using std::chrono::milliseconds;

/// Restores the automatic pool size even when an assertion fails mid-test.
struct ThreadGuard {
  ~ThreadGuard() { core::set_num_threads(0); }
};

TEST(EventLoopSession, DeployedMatchesSimulatorBitwise) {
  const auto spec = testutil::small_task_spec();
  const auto client = testutil::small_client_config();
  const auto params = testutil::small_params();
  const int rounds = 3;

  const auto sim = testutil::run_simulator(spec, client, params, rounds);

  EventLoopConfig lcfg;
  lcfg.shards = 2;
  metrics::Registry registry;
  const auto dep = testutil::run_deployed_event_loop(
      spec, client, params, rounds, lcfg, /*tracer=*/nullptr, /*quorum=*/0,
      milliseconds(30000), /*crash_client=*/-1, /*crash_round=*/0, &registry);

  ASSERT_EQ(dep.global.size(), sim.global.size());
  EXPECT_EQ(dep.global, sim.global);  // bitwise: float == float
  ASSERT_EQ(dep.log.records.size(), sim.log.records.size());
  for (std::size_t i = 0; i < sim.log.records.size(); ++i) {
    EXPECT_EQ(dep.log.records[i].test_accuracy,
              sim.log.records[i].test_accuracy)
        << "round " << sim.log.records[i].round;
  }
  EXPECT_EQ(dep.stats.selected_updates, sim.stats.selected_updates);
  EXPECT_EQ(dep.stats.skipped_clients, sim.stats.skipped_clients);
  for (const auto& st : dep.clients) {
    EXPECT_TRUE(st.completed);
    EXPECT_EQ(st.rounds_trained, rounds);
    EXPECT_EQ(st.reconnects, 0);
  }

  // The loop-mode observability: one latency sample per round, dispatch
  // samples for every frame the session drained, and a sane percentile
  // ordering on each.
  const auto& rl = registry.histogram("server.round_latency_ms");
  EXPECT_EQ(rl.count(), static_cast<std::uint64_t>(rounds));
  const auto& fd = registry.histogram("server.frame_dispatch_ms");
  EXPECT_GT(fd.count(), 0u);
  EXPECT_LE(fd.percentile(0.5), fd.percentile(0.99));
  EXPECT_GE(fd.percentile(0.99), fd.min());
  EXPECT_LE(fd.percentile(0.99), fd.max());
}

// Shard count is a performance knob, never a semantics knob: 1 shard and 3
// shards must both reproduce the simulator bitwise (decode batching and the
// element-range parallel aggregation cannot depend on the partition).
TEST(EventLoopSession, ShardCountInvariant) {
  const auto spec = testutil::small_task_spec();
  const auto client = testutil::small_client_config();
  const auto params = testutil::small_params();
  const int rounds = 3;

  const auto sim = testutil::run_simulator(spec, client, params, rounds);
  for (int shards : {1, 3}) {
    EventLoopConfig lcfg;
    lcfg.shards = shards;
    const auto dep = testutil::run_deployed_event_loop(spec, client, params,
                                                       rounds, lcfg);
    EXPECT_EQ(dep.global, sim.global) << "shards=" << shards;
  }
}

// Worker-thread count sweeps the parallel_for_blocked partition under the
// sharded apply_round; the per-element accumulation order is fixed by
// selection order, so the result is bitwise invariant.
TEST(EventLoopSession, WorkerThreadCountInvariant) {
  ThreadGuard guard;
  const auto spec = testutil::small_task_spec();
  const auto client = testutil::small_client_config();
  const auto params = testutil::small_params();
  const int rounds = 2;

  core::set_num_threads(1);
  const auto base = testutil::run_simulator(spec, client, params, rounds);
  for (int threads : {2, 4}) {
    core::set_num_threads(threads);
    EventLoopConfig lcfg;
    lcfg.shards = 2;
    const auto dep = testutil::run_deployed_event_loop(spec, client, params,
                                                       rounds, lcfg);
    EXPECT_EQ(dep.global, base.global) << "threads=" << threads;
  }
}

// Tiny queues force the backpressure path (reads paused mid-round) in a
// real session; the run must still complete and match the simulator.
TEST(EventLoopSession, SurvivesSaturatedQueues) {
  const auto spec = testutil::small_task_spec();
  const auto client = testutil::small_client_config();
  const auto params = testutil::small_params();
  const int rounds = 3;

  const auto sim = testutil::run_simulator(spec, client, params, rounds);
  EventLoopConfig lcfg;
  lcfg.shards = 1;
  lcfg.queue_depth = 2;
  lcfg.read_budget = 4096;
  const auto dep =
      testutil::run_deployed_event_loop(spec, client, params, rounds, lcfg);
  EXPECT_EQ(dep.global, sim.global);
  for (const auto& st : dep.clients) EXPECT_TRUE(st.completed);
}

// A client that severs its connection on round 2's MODEL must be able to
// rejoin through the event-loop handshake (rebind + catch-up) while the
// server finishes every round on the survivors' quorum.
TEST(EventLoopSession, CrashedClientRejoins) {
  const auto spec = testutil::small_task_spec();
  const auto client = testutil::small_client_config();
  const auto params = testutil::small_params();
  const int rounds = 4;

  const auto dep = testutil::run_deployed_event_loop(
      spec, client, params, rounds, EventLoopConfig{}, /*tracer=*/nullptr,
      /*quorum=*/3, milliseconds(5000), /*crash_client=*/3,
      /*crash_round=*/2);

  ASSERT_EQ(dep.log.records.size(), static_cast<std::size_t>(rounds));
  for (const auto& rec : dep.log.records) EXPECT_GE(rec.participants, 1);
  EXPECT_GE(dep.clients[3].reconnects, 1);
  EXPECT_GE(dep.log.ledger.total_reconnects(), 1);
  for (int id = 0; id < 3; ++id) {
    EXPECT_TRUE(dep.clients[static_cast<std::size_t>(id)].completed) << id;
    EXPECT_EQ(dep.clients[static_cast<std::size_t>(id)].rounds_trained,
              rounds)
        << id;
  }
  EXPECT_GE(dep.clients[3].rounds_trained, 2);
}

}  // namespace
}  // namespace adafl::net::transport
