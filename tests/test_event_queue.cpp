#include "net/event_queue.h"

#include <gtest/gtest.h>

namespace adafl::net {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<double> fire_times;
  std::function<void()> chain = [&] {
    fire_times.push_back(q.now());
    if (fire_times.size() < 4) q.schedule_in(1.5, chain);
  };
  q.schedule(0.0, chain);
  q.run_all();
  ASSERT_EQ(fire_times.size(), 4u);
  EXPECT_DOUBLE_EQ(fire_times[3], 4.5);
}

TEST(EventQueue, RunUntilLeavesLaterEventsQueued) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  q.run_until(7.0);
  EXPECT_DOUBLE_EQ(q.now(), 7.0);
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule(1.0, [] {}), CheckError);
  EXPECT_THROW(q.schedule_in(-0.1, [] {}), CheckError);
}

TEST(EventQueue, NullCallbackThrows) {
  EventQueue q;
  EXPECT_THROW(q.schedule(1.0, nullptr), CheckError);
}

TEST(EventQueue, RunNextReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueue, RunUntilBackwardsThrows) {
  EventQueue q;
  q.run_until(5.0);
  EXPECT_THROW(q.run_until(4.0), CheckError);
}

}  // namespace
}  // namespace adafl::net
