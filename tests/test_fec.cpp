// Property tests for the GF(256) / Reed-Solomon erasure-coding layer that
// backs the UDP datagram transport. The contract the transport relies on:
// encode -> erase up to r symbols -> decode restores the codeword
// byte-identically, and an unrecoverable pattern is REPORTED (false), never
// silently corrected into garbage.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "net/fec/gf256.h"
#include "net/fec/interleave.h"
#include "net/fec/rs.h"
#include "tensor/check.h"

namespace adafl::net::fec {
namespace {

constexpr std::uint64_t kSeed = 0xFEC0FEC0u;

// --- GF(256) ---------------------------------------------------------------

// The log/antilog tables must agree with a from-first-principles
// carry-less multiply over the whole 256x256 field.
TEST(Gf256, TablesMatchSlowReference) {
  for (int a = 0; a < 256; ++a)
    for (int b = 0; b < 256; ++b) {
      const auto x = static_cast<std::uint8_t>(a);
      const auto y = static_cast<std::uint8_t>(b);
      ASSERT_EQ(gf_mul(x, y), gf_mul_slow(x, y))
          << "gf_mul(" << a << ", " << b << ")";
    }
}

TEST(Gf256, FieldAxioms) {
  std::mt19937_64 rng(kSeed);
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng());
    const auto b = static_cast<std::uint8_t>(rng());
    const auto c = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(gf_mul(a, b), gf_mul(b, a));
    EXPECT_EQ(gf_mul(a, gf_mul(b, c)), gf_mul(gf_mul(a, b), c));
    // Distributivity over the field's addition (XOR).
    EXPECT_EQ(gf_mul(a, static_cast<std::uint8_t>(b ^ c)),
              gf_mul(a, b) ^ gf_mul(a, c));
  }
  EXPECT_EQ(gf_mul(0, 123), 0);
  EXPECT_EQ(gf_mul(1, 123), 123);
}

TEST(Gf256, InverseAndDivision) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(x, gf_inv(x)), 1) << "a=" << a;
    EXPECT_EQ(gf_div(x, x), 1);
  }
  EXPECT_THROW(gf_inv(0), CheckError);
  EXPECT_THROW(gf_div(1, 0), CheckError);
}

// alpha = 2 generates the multiplicative group: 255 distinct powers.
TEST(Gf256, AlphaIsPrimitive) {
  std::vector<bool> seen(256, false);
  for (int i = 0; i < 255; ++i) {
    const std::uint8_t p = gf_exp(i);
    EXPECT_FALSE(seen[p]) << "alpha^" << i << " repeats";
    seen[p] = true;
  }
  EXPECT_EQ(gf_exp(0), 1);
  EXPECT_EQ(gf_exp(255), 1);  // doubled table wraps: alpha^255 = alpha^0
}

// --- RS(n, k) codeword round-trips -----------------------------------------

struct Codeword {
  std::vector<std::uint8_t> data;
  std::vector<std::uint8_t> parity;
  std::vector<std::uint8_t> word;  // data || parity
};

Codeword make_codeword(const RsCode& rs, std::mt19937_64& rng) {
  Codeword c;
  c.data.resize(static_cast<std::size_t>(rs.k()));
  for (auto& b : c.data) b = static_cast<std::uint8_t>(rng());
  c.parity.resize(static_cast<std::size_t>(rs.parity()));
  rs.encode(c.data, c.parity);
  c.word = c.data;
  c.word.insert(c.word.end(), c.parity.begin(), c.parity.end());
  return c;
}

// Erase exactly `e` random positions (zero-filled, positions reported).
std::vector<int> erase_random(std::vector<std::uint8_t>& word, int e,
                              std::mt19937_64& rng) {
  std::vector<int> pos(word.size());
  for (std::size_t i = 0; i < pos.size(); ++i) pos[i] = static_cast<int>(i);
  std::shuffle(pos.begin(), pos.end(), rng);
  pos.resize(static_cast<std::size_t>(e));
  for (int p : pos) word[static_cast<std::size_t>(p)] = 0;
  return pos;
}

// Every erasure count up to r decodes byte-identically, across a spread of
// (n, k) shapes including the transport defaults.
TEST(ReedSolomon, ErasuresUpToParityBudgetDecodeExactly) {
  std::mt19937_64 rng(kSeed ^ 1);
  const int shapes[][2] = {{20, 16}, {16, 8}, {6, 4}, {255, 223}, {10, 1}};
  for (const auto& s : shapes) {
    const RsCode rs(s[0], s[1]);
    for (int e = 0; e <= rs.parity(); ++e) {
      for (int trial = 0; trial < 20; ++trial) {
        const Codeword c = make_codeword(rs, rng);
        std::vector<std::uint8_t> rx = c.word;
        const std::vector<int> erased = erase_random(rx, e, rng);
        ASSERT_TRUE(rs.decode(rx, erased))
            << "n=" << s[0] << " k=" << s[1] << " e=" << e;
        ASSERT_EQ(rx, c.word);
      }
    }
  }
}

// One more erasure than parity: decode must return false and must leave the
// codeword exactly as it received it (no silent corruption).
TEST(ReedSolomon, BeyondBudgetReportsUnrecoverableWithoutCorrupting) {
  std::mt19937_64 rng(kSeed ^ 2);
  const int shapes[][2] = {{20, 16}, {16, 8}, {6, 4}};
  for (const auto& s : shapes) {
    const RsCode rs(s[0], s[1]);
    for (int trial = 0; trial < 50; ++trial) {
      const Codeword c = make_codeword(rs, rng);
      std::vector<std::uint8_t> rx = c.word;
      const std::vector<int> erased = erase_random(rx, rs.parity() + 1, rng);
      const std::vector<std::uint8_t> as_received = rx;
      ASSERT_FALSE(rs.decode(rx, erased));
      ASSERT_EQ(rx, as_received) << "decode corrupted an unrecoverable word";
    }
  }
}

// Unknown-position errors: v corruptions (no erasure hints) decode while
// 2v <= r.
TEST(ReedSolomon, ErrorsWithinHalfBudgetDecode) {
  std::mt19937_64 rng(kSeed ^ 3);
  const RsCode rs(20, 14);  // r = 6 -> corrects up to 3 unknown errors
  for (int v = 0; v <= 3; ++v) {
    for (int trial = 0; trial < 40; ++trial) {
      const Codeword c = make_codeword(rs, rng);
      std::vector<std::uint8_t> rx = c.word;
      std::vector<int> pos(rx.size());
      for (std::size_t i = 0; i < pos.size(); ++i)
        pos[i] = static_cast<int>(i);
      std::shuffle(pos.begin(), pos.end(), rng);
      for (int i = 0; i < v; ++i)
        rx[static_cast<std::size_t>(pos[static_cast<std::size_t>(i)])] ^=
            static_cast<std::uint8_t>(1 + rng() % 255);
      ASSERT_TRUE(rs.decode(rx, {})) << "v=" << v;
      ASSERT_EQ(rx, c.word);
    }
  }
}

// Mixed errata: e erasures + v errors decode while e + 2v <= r.
TEST(ReedSolomon, MixedErrataWithinBudgetDecode) {
  std::mt19937_64 rng(kSeed ^ 4);
  const RsCode rs(24, 16);  // r = 8
  for (int e = 0; e <= 4; ++e) {
    const int v = (8 - e) / 2;
    for (int trial = 0; trial < 25; ++trial) {
      const Codeword c = make_codeword(rs, rng);
      std::vector<std::uint8_t> rx = c.word;
      std::vector<int> pos(rx.size());
      for (std::size_t i = 0; i < pos.size(); ++i)
        pos[i] = static_cast<int>(i);
      std::shuffle(pos.begin(), pos.end(), rng);
      std::vector<int> erased(pos.begin(), pos.begin() + e);
      for (int p : erased) rx[static_cast<std::size_t>(p)] = 0;
      for (int i = e; i < e + v; ++i)
        rx[static_cast<std::size_t>(pos[static_cast<std::size_t>(i)])] ^=
            static_cast<std::uint8_t>(1 + rng() % 255);
      ASSERT_TRUE(rs.decode(rx, erased)) << "e=" << e << " v=" << v;
      ASSERT_EQ(rx, c.word);
    }
  }
}

// --- Shard-wise (column) coding, as the transport uses it ------------------

TEST(ReedSolomon, ShardReconstructionRoundTrip) {
  std::mt19937_64 rng(kSeed ^ 5);
  const int n = 12, k = 8;
  const std::size_t s = 97;
  const RsCode rs(n, k);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::vector<std::uint8_t>> shards(
        static_cast<std::size_t>(n), std::vector<std::uint8_t>(s));
    for (int i = 0; i < k; ++i)
      for (auto& b : shards[static_cast<std::size_t>(i)])
        b = static_cast<std::uint8_t>(rng());
    std::vector<const std::uint8_t*> dp(static_cast<std::size_t>(k));
    std::vector<std::uint8_t*> pp(static_cast<std::size_t>(n - k));
    for (int i = 0; i < k; ++i)
      dp[static_cast<std::size_t>(i)] = shards[static_cast<std::size_t>(i)].data();
    for (int i = k; i < n; ++i)
      pp[static_cast<std::size_t>(i - k)] =
          shards[static_cast<std::size_t>(i)].data();
    rs.encode_shards(dp.data(), pp.data(), s);
    const auto original = shards;

    // Erase up to r random shards and reconstruct.
    std::vector<bool> present(static_cast<std::size_t>(n), true);
    std::vector<int> idx(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
    std::shuffle(idx.begin(), idx.end(), rng);
    const int e = 1 + static_cast<int>(rng() % static_cast<unsigned>(n - k));
    for (int i = 0; i < e; ++i) {
      const int p = idx[static_cast<std::size_t>(i)];
      present[static_cast<std::size_t>(p)] = false;
      std::fill(shards[static_cast<std::size_t>(p)].begin(),
                shards[static_cast<std::size_t>(p)].end(), 0);
    }
    std::vector<std::uint8_t*> all(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      all[static_cast<std::size_t>(i)] = shards[static_cast<std::size_t>(i)].data();
    ASSERT_TRUE(rs.reconstruct_shards(all.data(), present, s));
    ASSERT_EQ(shards, original) << "trial " << trial << " e=" << e;
  }
}

TEST(ReedSolomon, ShardReconstructionBeyondBudgetFails) {
  const int n = 6, k = 4;
  const std::size_t s = 16;
  const RsCode rs(n, k);
  std::mt19937_64 rng(kSeed ^ 6);
  std::vector<std::vector<std::uint8_t>> shards(
      static_cast<std::size_t>(n), std::vector<std::uint8_t>(s));
  for (int i = 0; i < k; ++i)
    for (auto& b : shards[static_cast<std::size_t>(i)])
      b = static_cast<std::uint8_t>(rng());
  std::vector<const std::uint8_t*> dp;
  std::vector<std::uint8_t*> pp;
  for (int i = 0; i < k; ++i)
    dp.push_back(shards[static_cast<std::size_t>(i)].data());
  for (int i = k; i < n; ++i)
    pp.push_back(shards[static_cast<std::size_t>(i)].data());
  rs.encode_shards(dp.data(), pp.data(), s);

  std::vector<bool> present(static_cast<std::size_t>(n), true);
  present[0] = present[1] = present[2] = false;  // 3 lost, only r=2 parity
  std::vector<std::uint8_t*> all;
  for (auto& sh : shards) all.push_back(sh.data());
  EXPECT_FALSE(rs.reconstruct_shards(all.data(), present, s));
}

TEST(ReedSolomon, RejectsInvalidShapes) {
  EXPECT_THROW(RsCode(256, 16), CheckError);  // n > 255
  EXPECT_THROW(RsCode(4, 5), CheckError);     // k > n
  EXPECT_THROW(RsCode(4, 0), CheckError);     // k < 1
}

// --- Block interleaver -----------------------------------------------------

TEST(Interleave, RoundTripAllRemainders) {
  std::mt19937_64 rng(kSeed ^ 7);
  for (int k = 1; k <= 7; ++k) {
    for (std::size_t len = 1; len <= 64; ++len) {
      const std::size_t s = (len + static_cast<std::size_t>(k) - 1) /
                            static_cast<std::size_t>(k);
      std::vector<std::uint8_t> src(len);
      for (auto& b : src) b = static_cast<std::uint8_t>(rng());
      std::vector<std::vector<std::uint8_t>> shards(
          static_cast<std::size_t>(k), std::vector<std::uint8_t>(s, 0xEE));
      std::vector<std::uint8_t*> sp;
      for (auto& sh : shards) sp.push_back(sh.data());
      interleave(src, k, s, sp.data());

      std::vector<const std::uint8_t*> cp;
      for (auto& sh : shards) cp.push_back(sh.data());
      std::vector<std::uint8_t> dst(len);
      deinterleave(cp.data(), k, s, dst);
      ASSERT_EQ(dst, src) << "k=" << k << " len=" << len;
    }
  }
}

// Byte b of the source lands in shard b%k at offset b/k — adjacent bytes in
// different shards, so one lost datagram costs one byte per RS column.
TEST(Interleave, AdjacentBytesLandInDistinctShards) {
  const int k = 4;
  const std::size_t s = 4;
  std::vector<std::uint8_t> src = {0, 1, 2,  3,  4,  5,  6,  7,
                                   8, 9, 10, 11, 12, 13, 14, 15};
  std::vector<std::vector<std::uint8_t>> shards(
      4, std::vector<std::uint8_t>(s, 0));
  std::vector<std::uint8_t*> sp;
  for (auto& sh : shards) sp.push_back(sh.data());
  interleave(src, k, s, sp.data());
  EXPECT_EQ(shards[0], (std::vector<std::uint8_t>{0, 4, 8, 12}));
  EXPECT_EQ(shards[1], (std::vector<std::uint8_t>{1, 5, 9, 13}));
  EXPECT_EQ(shards[2], (std::vector<std::uint8_t>{2, 6, 10, 14}));
  EXPECT_EQ(shards[3], (std::vector<std::uint8_t>{3, 7, 11, 15}));
}

}  // namespace
}  // namespace adafl::net::fec
