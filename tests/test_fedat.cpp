#include "fl/fedat.h"

#include <gtest/gtest.h>

#include "fl_fixtures.h"

namespace adafl::fl {
namespace {

using testing::make_mini_task;

FedAtConfig base_config() {
  FedAtConfig cfg;
  cfg.num_tiers = 2;
  cfg.duration = 6.0;
  cfg.eval_interval = 1.0;
  cfg.seed = 5;
  return cfg;
}

std::vector<DeviceProfile> two_speed_devices(int n) {
  std::vector<DeviceProfile> devices;
  for (int i = 0; i < n; ++i)
    devices.push_back(i < n / 2 ? straggler(workstation(), 4.0)
                                : workstation());
  return devices;
}

TEST(FedAt, LearnsAboveChance) {
  auto task = make_mini_task();
  FedAtConfig cfg = base_config();
  cfg.client = task.client;
  FedAtTrainer t(cfg, task.factory, &task.train, task.parts, &task.test,
                 two_speed_devices(4));
  auto log = t.run();
  EXPECT_GT(log.final_accuracy(), 0.5);
  EXPECT_GT(log.applied_updates, 0);
}

TEST(FedAt, TiersGroupByResponseTime) {
  auto task = make_mini_task(4);
  FedAtConfig cfg = base_config();
  cfg.client = task.client;
  FedAtTrainer t(cfg, task.factory, &task.train, task.parts, &task.test,
                 two_speed_devices(4));
  // Clients 0,1 are 4x slower -> they must share the slow tier.
  const auto& tiers = t.tier_of();
  EXPECT_EQ(tiers[0], tiers[1]);
  EXPECT_EQ(tiers[2], tiers[3]);
  EXPECT_NE(tiers[0], tiers[2]);
}

TEST(FedAt, FastTierCompletesMoreRounds) {
  auto task = make_mini_task(4);
  FedAtConfig cfg = base_config();
  cfg.client = task.client;
  FedAtTrainer t(cfg, task.factory, &task.train, task.parts, &task.test,
                 two_speed_devices(4));
  t.run();
  const int slow_tier = t.tier_of()[0];
  const int fast_tier = t.tier_of()[2];
  EXPECT_GT(t.tier_rounds()[static_cast<std::size_t>(fast_tier)],
            t.tier_rounds()[static_cast<std::size_t>(slow_tier)]);
  EXPECT_GT(t.tier_rounds()[static_cast<std::size_t>(slow_tier)], 0);
}

TEST(FedAt, DeterministicUnderSeed) {
  auto task = make_mini_task();
  FedAtConfig cfg = base_config();
  cfg.duration = 2.0;
  cfg.client = task.client;
  auto run = [&] {
    FedAtTrainer t(cfg, task.factory, &task.train, task.parts, &task.test,
                   two_speed_devices(4));
    return t.run();
  };
  auto a = run();
  auto b = run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i)
    EXPECT_EQ(a.records[i].test_accuracy, b.records[i].test_accuracy);
}

TEST(FedAt, SingleTierDegeneratesToSync) {
  auto task = make_mini_task(4);
  FedAtConfig cfg = base_config();
  cfg.num_tiers = 1;
  cfg.client = task.client;
  FedAtTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  // One tier = plain synchronous rounds; everything still works.
  EXPECT_GT(log.final_accuracy(), 0.4);
  EXPECT_EQ(t.tier_rounds().size(), 1u);
}

TEST(FedAt, InvalidConfigThrows) {
  auto task = make_mini_task(2);
  FedAtConfig cfg = base_config();
  cfg.num_tiers = 5;  // more tiers than clients
  cfg.client = task.client;
  EXPECT_THROW(
      FedAtTrainer(cfg, task.factory, &task.train, task.parts, &task.test),
      CheckError);
  cfg.num_tiers = 0;
  EXPECT_THROW(
      FedAtTrainer(cfg, task.factory, &task.train, task.parts, &task.test),
      CheckError);
}

}  // namespace
}  // namespace adafl::fl
