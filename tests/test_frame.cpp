// Frame envelope + CRC32 + incremental parser, including the malformed-input
// hardening the deployed transport relies on: a hostile or corrupted byte
// stream must throw CheckError (and get the connection dropped), never
// over-read, over-allocate, or silently deliver garbage.
#include <gtest/gtest.h>

#include <string>

#include "net/transport/crc32.h"
#include "net/transport/frame.h"
#include "tensor/check.h"

namespace adafl::net::transport {
namespace {

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

Frame sample_frame() {
  Frame f;
  f.type = MsgType::kUpdate;
  f.round = 7;
  f.client_id = 3;
  f.payload.resize(200);
  for (std::size_t i = 0; i < f.payload.size(); ++i)
    f.payload[i] = static_cast<std::uint8_t>(i * 37 + 1);
  return f;
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32({}), 0u);
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(as_bytes("a")), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string s = "123456789";
  std::uint32_t crc = 0;
  crc = crc32_update(crc, as_bytes(s.substr(0, 3)));
  crc = crc32_update(crc, as_bytes(s.substr(3, 4)));
  crc = crc32_update(crc, as_bytes(s.substr(7)));
  EXPECT_EQ(crc, crc32(as_bytes(s)));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Frame, EncodeDecodeRoundTrip) {
  const Frame f = sample_frame();
  const auto bytes = encode_frame(f);
  EXPECT_EQ(bytes.size(), f.wire_size());
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + f.payload.size());
  const Frame g = decode_frame(bytes);
  EXPECT_EQ(g.type, f.type);
  EXPECT_EQ(g.round, f.round);
  EXPECT_EQ(g.client_id, f.client_id);
  EXPECT_EQ(g.payload, f.payload);
}

TEST(Frame, EmptyPayloadRoundTrip) {
  Frame f;
  f.type = MsgType::kPing;
  f.round = 0;
  f.client_id = kServerId;
  const auto bytes = encode_frame(f);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes);
  const Frame g = decode_frame(bytes);
  EXPECT_EQ(g.type, MsgType::kPing);
  EXPECT_EQ(g.client_id, kServerId);
  EXPECT_TRUE(g.payload.empty());
}

TEST(Frame, ValidMsgTypeRange) {
  EXPECT_FALSE(is_valid_msg_type(0));
  // 1..10 are the session types; 11/12 are the replication pair
  // (STANDBY_HELLO, REPLICATE); 13..15 are the relay tier trio
  // (UPDATE_AGG, RELAY_HELLO, CHILD_GONE).
  for (std::uint8_t t = 1; t <= 15; ++t) EXPECT_TRUE(is_valid_msg_type(t));
  EXPECT_FALSE(is_valid_msg_type(16));
  EXPECT_FALSE(is_valid_msg_type(0xFF));
}

TEST(FrameParser, ByteAtATimeDelivery) {
  const Frame f = sample_frame();
  const auto bytes = encode_frame(f);
  FrameParser p;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    p.feed(std::span<const std::uint8_t>(&bytes[i], 1));
    EXPECT_FALSE(p.next().has_value()) << "frame surfaced early at byte " << i;
  }
  p.feed(std::span<const std::uint8_t>(&bytes[bytes.size() - 1], 1));
  const auto g = p.next();
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->payload, f.payload);
  EXPECT_EQ(p.pending_bytes(), 0u);
}

TEST(FrameParser, MultipleFramesPerFeed) {
  Frame a = sample_frame();
  Frame b;
  b.type = MsgType::kScore;
  b.round = 8;
  b.client_id = 1;
  b.payload = {1, 2, 3};
  Frame c;
  c.type = MsgType::kPong;

  std::vector<std::uint8_t> stream;
  for (const Frame* f : {&a, &b, &c}) {
    const auto e = encode_frame(*f);
    stream.insert(stream.end(), e.begin(), e.end());
  }
  // Tack on half of a fourth frame: it must stay buffered, not delivered.
  const auto d = encode_frame(sample_frame());
  stream.insert(stream.end(), d.begin(), d.begin() + 30);

  FrameParser p;
  p.feed(stream);
  EXPECT_EQ(p.next()->type, MsgType::kUpdate);
  EXPECT_EQ(p.next()->type, MsgType::kScore);
  EXPECT_EQ(p.next()->type, MsgType::kPong);
  EXPECT_FALSE(p.next().has_value());
  EXPECT_EQ(p.pending_bytes(), 30u);
  p.feed(std::span<const std::uint8_t>(d).subspan(30));
  EXPECT_EQ(p.next()->payload, sample_frame().payload);
}

TEST(FrameParser, RejectsBadMagic) {
  auto bytes = encode_frame(sample_frame());
  bytes[0] ^= 0xFF;
  FrameParser p;
  EXPECT_THROW(p.feed(bytes), CheckError);
  EXPECT_THROW(decode_frame(bytes), CheckError);
}

TEST(FrameParser, RejectsUnknownMessageType) {
  for (std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{16},
                           std::uint8_t{0xEE}}) {
    auto bytes = encode_frame(sample_frame());
    bytes[4] = bad;  // type byte follows the 4-byte magic
    FrameParser p;
    EXPECT_THROW(p.feed(bytes), CheckError) << int(bad);
  }
}

TEST(FrameParser, RejectsNonzeroReservedBytes) {
  for (std::size_t off : {std::size_t{5}, std::size_t{6}, std::size_t{7}}) {
    auto bytes = encode_frame(sample_frame());
    bytes[off] = 1;
    FrameParser p;
    EXPECT_THROW(p.feed(bytes), CheckError) << "reserved byte " << off;
  }
}

TEST(FrameParser, RejectsOversizedLengthPrefixFromHeaderAlone) {
  // A forged length prefix must be rejected as soon as the header is seen —
  // before any payload arrives — so a hostile peer cannot make the parser
  // buffer (or a naive receiver allocate) 4GB.
  auto bytes = encode_frame(sample_frame());
  bytes.resize(kFrameHeaderBytes);  // header only
  // payload_len lives at offset 16: magic(4) type(1) reserved(3) round(4)
  // client_id(4).
  const std::uint32_t huge = kMaxFramePayload + 1;
  bytes[16] = static_cast<std::uint8_t>(huge);
  bytes[17] = static_cast<std::uint8_t>(huge >> 8);
  bytes[18] = static_cast<std::uint8_t>(huge >> 16);
  bytes[19] = static_cast<std::uint8_t>(huge >> 24);
  FrameParser p;
  EXPECT_THROW(p.feed(bytes), CheckError);
}

TEST(FrameParser, RejectsCorruptedPayloadCrc) {
  auto bytes = encode_frame(sample_frame());
  bytes.back() ^= 0x01;  // flip one payload bit
  FrameParser p;
  EXPECT_THROW(p.feed(bytes), CheckError);
  EXPECT_THROW(decode_frame(bytes), CheckError);
}

TEST(Frame, DecodeRejectsTruncationAndTrailingBytes) {
  const auto bytes = encode_frame(sample_frame());
  // Shorter than a header.
  EXPECT_THROW(
      decode_frame(std::span<const std::uint8_t>(bytes).first(10)),
      CheckError);
  // Header present but payload truncated.
  EXPECT_THROW(
      decode_frame(
          std::span<const std::uint8_t>(bytes).first(bytes.size() - 1)),
      CheckError);
  // Trailing junk after a complete frame.
  auto longer = bytes;
  longer.push_back(0);
  EXPECT_THROW(decode_frame(longer), CheckError);
}

TEST(Frame, EncodeRejectsOversizedPayload) {
  Frame f;
  f.type = MsgType::kUpdate;
  f.payload.resize(kMaxFramePayload + 1);
  EXPECT_THROW(encode_frame(f), CheckError);
}

// --- consume(): the event loop's non-copying feed. ------------------------

namespace {

/// A stream of frames with varied payload sizes, including empty.
std::vector<std::uint8_t> sample_stream(std::vector<Frame>* frames_out) {
  std::vector<Frame> frames;
  for (int i = 0; i < 5; ++i) {
    Frame f;
    f.type = i % 2 == 0 ? MsgType::kUpdate : MsgType::kScore;
    f.round = static_cast<std::uint32_t>(i);
    f.client_id = static_cast<std::uint32_t>(100 + i);
    f.payload.resize(static_cast<std::size_t>(i) * 37);
    for (std::size_t j = 0; j < f.payload.size(); ++j)
      f.payload[j] = static_cast<std::uint8_t>(i * 31 + j * 7);
    frames.push_back(std::move(f));
  }
  std::vector<std::uint8_t> stream;
  for (const Frame& f : frames) {
    const auto bytes = encode_frame(f);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  *frames_out = std::move(frames);
  return stream;
}

std::vector<Frame> drain(FrameParser& p) {
  std::vector<Frame> out;
  while (auto f = p.next()) out.push_back(std::move(*f));
  return out;
}

void expect_same_frames(const std::vector<Frame>& got,
                        const std::vector<Frame>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].type, want[i].type) << "frame " << i;
    EXPECT_EQ(got[i].round, want[i].round) << "frame " << i;
    EXPECT_EQ(got[i].client_id, want[i].client_id) << "frame " << i;
    EXPECT_EQ(got[i].payload, want[i].payload) << "frame " << i;
  }
}

}  // namespace

TEST(FrameParserConsume, WholeBufferMatchesFeed) {
  std::vector<Frame> want;
  const auto stream = sample_stream(&want);
  FrameParser p;
  std::size_t completed = p.consume(stream);
  EXPECT_EQ(completed, want.size());
  expect_same_frames(drain(p), want);
  EXPECT_EQ(p.pending_bytes(), 0u);
}

// The pinned contract: ANY split of the stream across consume() calls —
// byte-at-a-time being the worst case — yields the identical frame sequence
// as one whole-buffer call.
TEST(FrameParserConsume, ByteAtATimeMatchesWholeBuffer) {
  std::vector<Frame> want;
  const auto stream = sample_stream(&want);
  FrameParser p;
  std::size_t completed = 0;
  for (std::size_t i = 0; i < stream.size(); ++i)
    completed += p.consume(std::span<const std::uint8_t>(&stream[i], 1));
  EXPECT_EQ(completed, want.size());
  expect_same_frames(drain(p), want);
  EXPECT_EQ(p.pending_bytes(), 0u);
}

TEST(FrameParserConsume, EverySplitPointMatchesWholeBuffer) {
  std::vector<Frame> want;
  const auto stream = sample_stream(&want);
  const std::span<const std::uint8_t> s(stream);
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameParser p;
    std::size_t completed = p.consume(s.subspan(0, cut));
    completed += p.consume(s.subspan(cut));
    EXPECT_EQ(completed, want.size()) << "split at " << cut;
    expect_same_frames(drain(p), want);
    EXPECT_EQ(p.pending_bytes(), 0u) << "split at " << cut;
  }
}

// consume() and feed() interleave on one parser: a partial frame buffered by
// consume() is finished by feed() and vice versa.
TEST(FrameParserConsume, InterleavesWithFeed) {
  std::vector<Frame> want;
  const auto stream = sample_stream(&want);
  const std::span<const std::uint8_t> s(stream);
  FrameParser p;
  bool use_consume = true;
  const std::size_t chunk = 13;  // never aligned with a frame boundary
  for (std::size_t off = 0; off < s.size(); off += chunk) {
    const auto part = s.subspan(off, std::min(chunk, s.size() - off));
    if (use_consume)
      p.consume(part);
    else
      p.feed(part);
    use_consume = !use_consume;
  }
  expect_same_frames(drain(p), want);
  EXPECT_EQ(p.pending_bytes(), 0u);
}

TEST(FrameParserConsume, RejectsBadMagic) {
  auto bytes = encode_frame(sample_frame());
  bytes[0] ^= 0xFF;
  FrameParser p;
  EXPECT_THROW(p.consume(bytes), CheckError);
}

TEST(FrameParserConsume, RejectsCorruptedPayloadCrcInBufferedTail) {
  auto bytes = encode_frame(sample_frame());
  bytes.back() ^= 0x01;
  // Split mid-payload so the corrupt tail goes through the buffered
  // completion path, not the in-place decode.
  FrameParser p;
  const std::span<const std::uint8_t> s(bytes);
  p.consume(s.subspan(0, bytes.size() - 5));
  EXPECT_THROW(p.consume(s.subspan(bytes.size() - 5)), CheckError);
}

}  // namespace
}  // namespace adafl::net::transport
