// Seed-deterministic fuzzing of the two wire-facing parsers: the transport
// FrameParser (byte-stream framing) and compress::wire deserialization
// (gradient payload codec). Tens of thousands of mutated, truncated, and
// bit-flipped inputs must either parse or throw CheckError — never crash,
// hang, over-read, or corrupt parser state. Every case derives from one
// fixed seed so a failure reproduces exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <span>
#include <vector>

#include "compress/codec.h"
#include "compress/wire.h"
#include "net/transport/frame.h"
#include "net/transport/session.h"
#include "net/transport/udp.h"
#include "tensor/check.h"
#include "tensor/rng.h"

namespace adafl {
namespace {

using net::transport::Frame;
using net::transport::FrameParser;
using net::transport::MsgType;

constexpr std::uint64_t kFuzzSeed = 0xAF17FA22u;

std::vector<std::uint8_t> make_valid_frame_bytes(std::mt19937_64& rng) {
  static const MsgType kTypes[] = {
      MsgType::kHello,  MsgType::kWelcome, MsgType::kModel, MsgType::kScore,
      MsgType::kSelect, MsgType::kSkip,    MsgType::kUpdate, MsgType::kPing,
      MsgType::kPong,   MsgType::kShutdown};
  Frame f;
  f.type = kTypes[rng() % std::size(kTypes)];
  f.round = static_cast<std::uint32_t>(rng() % 1000);
  f.client_id = static_cast<std::uint32_t>(rng() % 64);
  f.payload.resize(rng() % 256);
  for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng());
  return net::transport::encode_frame(f);
}

/// Feeds `bytes` to a fresh parser in random-sized chunks; returns the
/// number of frames parsed, or -1 if the stream was rejected (CheckError).
int feed_stream(std::span<const std::uint8_t> bytes, std::mt19937_64& rng) {
  FrameParser parser;
  int frames = 0;
  std::size_t off = 0;
  try {
    while (off < bytes.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng() % 97, bytes.size() - off);
      parser.feed(bytes.subspan(off, chunk));
      off += chunk;
      while (parser.next()) ++frames;
    }
    while (parser.next()) ++frames;
  } catch (const CheckError&) {
    return -1;
  }
  return frames;
}

// ~7k cases: one or two valid frames with a random single-bit flip, a random
// byte overwrite, or a truncation. The parser must parse or reject — and a
// stream left unmutated must always parse completely.
TEST(FrameFuzz, MutatedFrameStreams) {
  std::mt19937_64 rng(kFuzzSeed);
  int parsed = 0, rejected = 0, intact = 0;
  for (int i = 0; i < 7000; ++i) {
    std::vector<std::uint8_t> stream = make_valid_frame_bytes(rng);
    if (i % 2 == 0) {
      const auto second = make_valid_frame_bytes(rng);
      stream.insert(stream.end(), second.begin(), second.end());
    }
    const int mode = i % 4;
    if (mode == 0) {  // single bit flip
      stream[rng() % stream.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    } else if (mode == 1) {  // random byte overwrite
      stream[rng() % stream.size()] = static_cast<std::uint8_t>(rng());
    } else if (mode == 2) {  // truncate
      stream.resize(rng() % stream.size());
    }  // mode 3: leave intact
    const int got = feed_stream(stream, rng);
    if (mode == 3) {
      ASSERT_GE(got, 1) << "intact stream rejected at case " << i;
      ++intact;
    }
    if (got >= 0) ++parsed; else ++rejected;
  }
  // The mutation mix must actually exercise both outcomes.
  EXPECT_GT(rejected, 1000);
  EXPECT_GT(parsed, 1000);
  EXPECT_GT(intact, 1500);
}

// ~2k cases of pure garbage: random bytes, sometimes starting with the real
// magic so the parser gets past the cheap check.
TEST(FrameFuzz, GarbageStreams) {
  std::mt19937_64 rng(kFuzzSeed ^ 0x6A5Bu);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> stream(rng() % 300);
    for (auto& b : stream) b = static_cast<std::uint8_t>(rng());
    if (i % 3 == 0 && stream.size() >= 4) {
      stream[0] = 'A'; stream[1] = 'F'; stream[2] = 'L'; stream[3] = '1';
    }
    feed_stream(stream, rng);  // must not crash or hang
  }
}

// A poisoned parser (post-throw) must stay safely rejectable: feeding more
// bytes may throw again but never crashes.
TEST(FrameFuzz, PoisonedParserStaysSafe) {
  std::mt19937_64 rng(kFuzzSeed ^ 0x9177u);
  for (int i = 0; i < 500; ++i) {
    FrameParser parser;
    std::vector<std::uint8_t> bad(net::transport::kFrameHeaderBytes, 0xFF);
    EXPECT_THROW(parser.feed(bad), CheckError);
    try {
      parser.feed(make_valid_frame_bytes(rng));
      while (parser.next()) {}
    } catch (const CheckError&) {
    }
  }
}

std::vector<std::uint8_t> make_valid_gradient_bytes(std::mt19937_64& rng,
                                                    tensor::Rng& enc_rng) {
  std::vector<float> grad(16 + rng() % 64);
  for (auto& v : grad)
    v = static_cast<float>(static_cast<double>(rng() % 2000) / 1000.0 - 1.0);
  const int which = static_cast<int>(rng() % 4);
  compress::EncodedGradient e;
  if (which == 0) {
    e = compress::IdentityCodec().encode(grad, enc_rng);
  } else if (which == 1) {
    e = compress::TopKCodec(4.0).encode(grad, enc_rng);
  } else if (which == 2) {
    e = compress::QsgdCodec(8).encode(grad, enc_rng);
  } else {
    e = compress::TernaryCodec().encode(grad, enc_rng);
  }
  return compress::serialize(e);
}

// ~6k cases: serialized gradients with bit flips, overwrites, truncations,
// and appended garbage into deserialize_into(). The output message is
// caller-owned and reused across calls, exactly like the session layer's
// receive path — a rejected parse must not break the next accepted one.
TEST(FrameFuzz, MutatedGradientPayloads) {
  std::mt19937_64 rng(kFuzzSeed ^ 0xD6C0u);
  tensor::Rng enc_rng(kFuzzSeed);
  compress::EncodedGradient out;  // reused, like the server's scratch message
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 6000; ++i) {
    std::vector<std::uint8_t> bytes = make_valid_gradient_bytes(rng, enc_rng);
    const int mode = i % 5;
    if (mode == 0) {
      bytes[rng() % bytes.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    } else if (mode == 1) {
      bytes[rng() % bytes.size()] = static_cast<std::uint8_t>(rng());
    } else if (mode == 2) {
      bytes.resize(rng() % bytes.size());
    } else if (mode == 3) {
      bytes.push_back(static_cast<std::uint8_t>(rng()));
    }  // mode 4: intact
    try {
      compress::deserialize_into(bytes, out);
      ++accepted;
      // Whatever parsed must be internally consistent enough to decode.
      // The session layer rejects any message whose dense_size disagrees
      // with the model before decoding; mirror that gate here so a flipped
      // size field doesn't make the *test* allocate gigabytes.
      if (out.dense_size <= (1 << 16)) {
        std::vector<float> dense = out.decode();
        EXPECT_EQ(dense.size(), static_cast<std::size_t>(out.dense_size));
      }
    } catch (const CheckError&) {
      ++rejected;
    }
    if (mode == 4) {
      // An unmutated message always parses and round-trips its wire size.
      compress::deserialize_into(make_valid_gradient_bytes(rng, enc_rng),
                                       out);
    }
  }
  EXPECT_GT(accepted, 500);
  EXPECT_GT(rejected, 500);
}

// ---------------------------------------------------------------------------
// Datagram-header fuzzing: the FEC reassembler receives raw UDP payloads, so
// unlike the byte-stream FrameParser it must NEVER throw — hostile datagrams
// are dropped (counted malformed) and the stream stays usable.

using net::transport::FrameFragmenter;
using net::transport::FrameReassembler;
using net::transport::UdpFecConfig;

UdpFecConfig fuzz_fec_config() {
  UdpFecConfig cfg;
  cfg.data_shards = 4;
  cfg.parity_shards = 2;
  cfg.max_shard_bytes = 48;  // small shards => multi-generation frames
  cfg.max_assemblies = 4;
  return cfg;
}

Frame make_random_frame(std::mt19937_64& rng) {
  Frame f;
  f.type = MsgType::kUpdate;
  f.round = static_cast<std::uint32_t>(rng() % 1000);
  f.client_id = static_cast<std::uint32_t>(rng() % 64);
  f.payload.resize(rng() % 700);
  for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng());
  return f;
}

// ~6k cases: datagrams of a valid frame with one mutated member — bit flips
// and byte overwrites across the header (bad generation/sequence numbers,
// bad shard indices, bad lengths), truncations, duplicates, and drops.
// offer() must never throw, and an unmutated set must reassemble the frame
// byte-identically in any delivery order.
TEST(DatagramFuzz, MutatedDatagrams) {
  std::mt19937_64 rng(kFuzzSeed ^ 0xDA7A0001u);
  const UdpFecConfig cfg = fuzz_fec_config();
  FrameFragmenter frag(cfg);
  FrameReassembler reasm(cfg);
  int delivered = 0;
  for (int i = 0; i < 6000; ++i) {
    const Frame f = make_random_frame(rng);
    auto dgrams = frag.fragment(f);
    const int mode = i % 6;
    if (mode == 0) {  // single bit flip somewhere (often the header)
      auto& d = dgrams[rng() % dgrams.size()];
      d[rng() % d.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    } else if (mode == 1) {  // byte overwrite targeted at the header
      auto& d = dgrams[rng() % dgrams.size()];
      d[rng() % std::min<std::size_t>(d.size(),
                                      net::transport::kDatagramHeaderBytes)] =
          static_cast<std::uint8_t>(rng());
    } else if (mode == 2) {  // truncate one datagram
      auto& d = dgrams[rng() % dgrams.size()];
      d.resize(rng() % d.size());
    } else if (mode == 3) {  // duplicate one datagram
      dgrams.push_back(dgrams[rng() % dgrams.size()]);
    } else if (mode == 4) {  // drop within the parity budget
      if (dgrams.size() > 1) dgrams.erase(dgrams.begin() + static_cast<long>(
                                              rng() % dgrams.size()));
    }  // mode 5: intact
    std::shuffle(dgrams.begin(), dgrams.end(), rng);
    for (const auto& d : dgrams)
      ASSERT_NO_THROW(reasm.offer(d)) << "offer threw at case " << i;
    while (auto got = reasm.next()) {
      ++delivered;
      if (mode == 5) {
        EXPECT_EQ(got->payload, f.payload) << "payload corrupted, case " << i;
        EXPECT_EQ(got->round, f.round);
      }
    }
  }
  // Intact and single-drop cases must actually deliver (parity covers one
  // loss), so a silent drop-everything reassembler cannot pass.
  EXPECT_GT(delivered, 2000);
}

// ~2k cases of pure garbage, sometimes wearing a valid magic. Never throws,
// never delivers.
TEST(DatagramFuzz, GarbageDatagrams) {
  std::mt19937_64 rng(kFuzzSeed ^ 0xDA7A0002u);
  const UdpFecConfig cfg = fuzz_fec_config();
  FrameReassembler reasm(cfg);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> d(rng() % 200);
    for (auto& b : d) b = static_cast<std::uint8_t>(rng());
    if (i % 3 == 0 && d.size() >= 4) {
      d[0] = 'A'; d[1] = 'F'; d[2] = 'D'; d[3] = '1';
    }
    ASSERT_NO_THROW(reasm.offer(d));
  }
  EXPECT_FALSE(reasm.next().has_value());
}

// Every truncation length of a valid datagram, plus cross-generation and
// cross-frame interleavings (~2k cases total). The reassembler must keep
// accepting valid traffic afterwards.
TEST(DatagramFuzz, TruncatedHeadersAndCrossFrameMixing) {
  std::mt19937_64 rng(kFuzzSeed ^ 0xDA7A0003u);
  const UdpFecConfig cfg = fuzz_fec_config();
  FrameFragmenter frag(cfg);
  FrameReassembler reasm(cfg);

  // All prefixes of one valid datagram.
  const Frame f0 = make_random_frame(rng);
  const auto base = frag.fragment(f0);
  for (std::size_t len = 0; len < base[0].size(); ++len)
    ASSERT_NO_THROW(reasm.offer(std::span(base[0].data(), len)));

  // Interleave datagrams of many concurrent frames (more than
  // max_assemblies, forcing evictions), with occasional re-offers of stale
  // datagrams from long-gone frames.
  std::vector<std::vector<std::uint8_t>> stale;
  int delivered = 0;
  for (int i = 0; i < 400; ++i) {
    std::vector<std::vector<std::uint8_t>> mixed;
    std::vector<Frame> frames;
    for (int j = 0; j < 5; ++j) {
      frames.push_back(make_random_frame(rng));
      for (auto& d : frag.fragment(frames.back())) mixed.push_back(std::move(d));
    }
    if (!stale.empty() && i % 7 == 0)
      mixed.push_back(stale[rng() % stale.size()]);
    std::shuffle(mixed.begin(), mixed.end(), rng);
    for (const auto& d : mixed) ASSERT_NO_THROW(reasm.offer(d));
    while (reasm.next()) ++delivered;
    stale.push_back(mixed[rng() % mixed.size()]);
    if (stale.size() > 16) stale.erase(stale.begin());
  }
  EXPECT_GT(delivered, 1000);  // 5 frames x 400 rounds, nearly all complete
}

// ---------------------------------------------------------------------------
// UPDATE-AGG fuzzing: the relay-tier aggregate message is the highest-trust
// input the root accepts (one frame commits a whole group of leaves), so its
// parser + validator pair must reject every malformed or hostile variant
// with CheckError — the session layer's signal to drop the relay connection
// — and never crash, over-read, or let a bad aggregate commit.

using net::transport::UpdateAggChild;
using net::transport::UpdateAggPayload;

constexpr std::int64_t kAggDense = 512;
constexpr int kAggGroup = 8;
constexpr int kAggRelayBase = 8;
constexpr int kAggRelayCount = 16;

/// A structurally and semantically valid UPDATE-AGG for group [8, 16) of a
/// relay claiming [8, 24), with a random child subset and top-k partial.
UpdateAggPayload make_valid_agg(std::mt19937_64& rng) {
  UpdateAggPayload a;
  a.base = kAggRelayBase;
  a.count = kAggGroup;
  const std::uint32_t nc = 1 + rng() % kAggGroup;
  std::vector<std::uint32_t> ids(kAggGroup);
  for (std::uint32_t i = 0; i < kAggGroup; ++i) ids[i] = a.base + i;
  std::shuffle(ids.begin(), ids.end(), rng);
  ids.resize(nc);
  std::sort(ids.begin(), ids.end());
  for (const std::uint32_t id : ids) {
    UpdateAggChild c;
    c.id = id;
    c.num_examples = 1 + static_cast<std::int64_t>(rng() % 512);
    c.mean_loss = static_cast<float>(static_cast<double>(rng() % 5000) / 1000.0);
    c.raw_delta_norm = static_cast<double>(rng() % 10000) / 100.0;
    c.wire_bytes = static_cast<std::int64_t>(rng() % 100000);
    a.children.push_back(c);
  }
  a.partial.kind = compress::CodecKind::kTopK;
  a.partial.dense_size = kAggDense;
  a.partial.wire_bytes = 0;
  const std::size_t k = 1 + rng() % 64;
  std::vector<std::uint32_t> idx(kAggDense);
  for (std::size_t i = 0; i < idx.size(); ++i)
    idx[i] = static_cast<std::uint32_t>(i);
  std::shuffle(idx.begin(), idx.end(), rng);
  idx.resize(k);
  std::sort(idx.begin(), idx.end());
  a.partial.indices = idx;
  a.partial.values.resize(k);
  for (auto& v : a.partial.values)
    v = static_cast<float>(static_cast<double>(rng() % 2000) / 1000.0 - 1.0);
  return a;
}

/// Full root-side acceptance: structural parse + semantic validation.
/// Returns true when the bytes would commit, false when the root would drop
/// the relay connection. Anything else (crash, hang, foreign exception)
/// fails the test.
bool root_accepts(std::span<const std::uint8_t> bytes) {
  try {
    const UpdateAggPayload a = net::transport::parse_update_agg(bytes);
    net::transport::validate_update_agg(a, kAggDense, kAggGroup,
                                        kAggRelayBase, kAggRelayCount);
    return true;
  } catch (const CheckError&) {
    return false;
  }
}

// ~5.5k cases: valid UPDATE-AGG bytes with a bit flip, byte overwrite,
// truncation, or appended garbage. Every case must parse-or-reject; intact
// bytes must always be accepted.
TEST(UpdateAggFuzz, MutatedPayloads) {
  std::mt19937_64 rng(kFuzzSeed ^ 0xA6600001u);
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 5500; ++i) {
    std::vector<std::uint8_t> bytes =
        net::transport::encode_update_agg(make_valid_agg(rng));
    const int mode = i % 5;
    if (mode == 0) {
      bytes[rng() % bytes.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    } else if (mode == 1) {
      bytes[rng() % bytes.size()] = static_cast<std::uint8_t>(rng());
    } else if (mode == 2) {
      bytes.resize(rng() % bytes.size());
    } else if (mode == 3) {
      const std::size_t extra = 1 + rng() % 32;
      for (std::size_t j = 0; j < extra; ++j)
        bytes.push_back(static_cast<std::uint8_t>(rng()));
    }  // mode 4: intact
    const bool ok = root_accepts(bytes);
    if (mode == 4) ASSERT_TRUE(ok) << "intact UPDATE-AGG rejected, case " << i;
    if (mode == 2 || mode == 3)
      ASSERT_FALSE(ok) << "resized UPDATE-AGG accepted, case " << i;
    if (ok) ++accepted; else ++rejected;
  }
  EXPECT_GT(accepted, 1000);  // the intact fifth, at minimum
  EXPECT_GT(rejected, 2000);  // truncation/append alone guarantee this
}

// ~4k cases of semantically hostile aggregates that are byte-wise
// well-formed: every one must be rejected. These are the messages a buggy
// or malicious relay could actually construct — each would corrupt the
// round (double-counted leaf, foreign leaf, poisoned coordinates) if the
// root committed it.
TEST(UpdateAggFuzz, StructuredHostileAggregates) {
  std::mt19937_64 rng(kFuzzSeed ^ 0xA6600002u);
  constexpr int kModes = 16;
  for (int i = 0; i < 4000; ++i) {
    UpdateAggPayload a = make_valid_agg(rng);
    const int mode = i % kModes;
    switch (mode) {
      case 0:  // duplicate child id
        a.children.push_back(a.children.back());
        break;
      case 1:  // non-ascending child ids
        if (a.children.size() < 2) a.children.push_back(a.children.back());
        std::swap(a.children.front(), a.children.back());
        if (a.children.front().id == a.children.back().id)
          a.children.front().id = a.children.back().id + 1;
        break;
      case 2:  // child id outside the group
        a.children.back().id = a.base + a.count + rng() % 100;
        break;
      case 3:  // empty child list
        a.children.clear();
        break;
      case 4:  // more children than the group holds
        a.count = 2;
        break;
      case 5:  // non-positive example count
        a.children.front().num_examples = -static_cast<std::int64_t>(rng() % 2);
        break;
      case 6:  // non-finite mean loss
        a.children.front().mean_loss =
            i % 2 ? std::numeric_limits<float>::quiet_NaN()
                  : std::numeric_limits<float>::infinity();
        break;
      case 7:  // invalid raw delta norm
        a.children.front().raw_delta_norm =
            i % 2 ? -1.0 : std::numeric_limits<double>::quiet_NaN();
        break;
      case 8:  // absurd claimed wire size
        a.children.front().wire_bytes =
            static_cast<std::int64_t>(net::transport::kMaxFramePayload) + 1 +
            static_cast<std::int64_t>(rng() % 1000);
        break;
      case 9:  // partial is not top-k
        a.partial.kind = compress::CodecKind::kIdentity;
        a.partial.indices.clear();
        a.partial.values.assign(static_cast<std::size_t>(kAggDense), 0.0f);
        break;
      case 10:  // partial coordinate out of range
        a.partial.indices.back() =
            static_cast<std::uint32_t>(kAggDense + rng() % 100);
        break;
      case 11:  // partial coordinates not strictly ascending
        if (a.partial.indices.size() < 2) {
          a.partial.indices.push_back(a.partial.indices.back());
          a.partial.values.push_back(0.5f);
        } else {
          a.partial.indices.back() = a.partial.indices.front();
        }
        break;
      case 12:  // non-finite partial value
        a.partial.values.front() =
            i % 2 ? std::numeric_limits<float>::quiet_NaN()
                  : -std::numeric_limits<float>::infinity();
        break;
      case 13:  // dense size disagrees with the model
        a.partial.dense_size = kAggDense + 1 + static_cast<std::int64_t>(
                                                  rng() % 64);
        break;
      case 14:  // group not aligned to agg_group
        a.base += 1 + rng() % (kAggGroup - 1);
        for (auto& c : a.children) c.id = a.base;  // keep ids in-group
        a.children.resize(1);
        break;
      case 15:  // group outside the relay's claimed range
        a.base = kAggRelayBase + kAggRelayCount;
        for (std::size_t j = 0; j < a.children.size(); ++j)
          a.children[j].id = a.base + static_cast<std::uint32_t>(j);
        break;
      default:
        break;
    }
    const auto bytes = net::transport::encode_update_agg(a);
    ASSERT_FALSE(root_accepts(bytes))
        << "hostile aggregate accepted: mode " << mode << ", case " << i;
  }
}

// Every prefix of one valid UPDATE-AGG plus a patched inner-payload length
// field (~600 cases): a frame that lies about its partial's size — in
// either direction — must be rejected, and no truncation may over-read.
TEST(UpdateAggFuzz, TruncationsAndLengthLies) {
  std::mt19937_64 rng(kFuzzSeed ^ 0xA6600003u);
  const UpdateAggPayload a = make_valid_agg(rng);
  const auto bytes = net::transport::encode_update_agg(a);
  for (std::size_t len = 0; len < bytes.size(); ++len)
    ASSERT_FALSE(root_accepts(std::span(bytes.data(), len)))
        << "truncated UPDATE-AGG accepted at length " << len;
  ASSERT_TRUE(root_accepts(bytes));

  // plen sits right after the child records.
  const std::size_t plen_off = 12 + a.children.size() * 32;
  ASSERT_LT(plen_off + 4, bytes.size());
  for (const std::int64_t delta : {-5, -1, 1, 5, 1000}) {
    std::vector<std::uint8_t> lied = bytes;
    std::uint32_t plen = 0;
    for (int b = 0; b < 4; ++b)
      plen |= static_cast<std::uint32_t>(lied[plen_off + b]) << (8 * b);
    const std::uint32_t bad = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(plen) + delta);
    for (int b = 0; b < 4; ++b)
      lied[plen_off + b] = static_cast<std::uint8_t>((bad >> (8 * b)) & 0xFF);
    ASSERT_FALSE(root_accepts(lied)) << "plen lie " << delta << " accepted";
  }
}

}  // namespace
}  // namespace adafl
