#include "data/har.h"

#include <gtest/gtest.h>

#include <map>

#include "gradcheck.h"
#include "nn/conv1d.h"
#include "nn/optimizer.h"

namespace adafl::data {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(Conv1d, OutputShape) {
  Rng rng(1);
  nn::Conv1d conv(3, 8, 5, rng, 1, 2);
  Tensor x = Tensor::randn({2, 3, 1, 32}, rng);
  EXPECT_EQ(conv.forward(x, false).shape(), Shape({2, 8, 1, 32}));
}

TEST(Conv1d, StridedUnpaddedShape) {
  Rng rng(1);
  nn::Conv1d conv(1, 2, 3, rng, 2, 0);
  Tensor x = Tensor::randn({1, 1, 1, 11}, rng);
  EXPECT_EQ(conv.forward(x, false).shape(), Shape({1, 2, 1, 5}));
}

TEST(Conv1d, GradientCheck) {
  Rng rng(2);
  nn::Conv1d conv(2, 3, 3, rng, 1, 1);
  Tensor x = Tensor::randn({2, 2, 1, 9}, rng);
  nn::testing::check_layer_gradients(conv, x, 50);
}

TEST(Conv1d, GradientCheckStrided) {
  Rng rng(3);
  nn::Conv1d conv(1, 2, 5, rng, 2, 2);
  Tensor x = Tensor::randn({1, 1, 1, 12}, rng);
  nn::testing::check_layer_gradients(conv, x, 51);
}

TEST(Conv1d, RejectsNonSignalInput) {
  Rng rng(4);
  nn::Conv1d conv(3, 4, 3, rng);
  Tensor image({1, 3, 4, 4});
  EXPECT_THROW(conv.forward(image, false), CheckError);
}

TEST(MaxPool1d, SelectsMaxAndRoutesGradient) {
  nn::MaxPool1d pool(2);
  Tensor x({1, 1, 1, 4}, std::vector<float>{1, 7, 3, 2});
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 2}));
  EXPECT_EQ(y[0], 7.0f);
  EXPECT_EQ(y[1], 3.0f);
  Tensor g({1, 1, 1, 2}, std::vector<float>{1.0f, 2.0f});
  Tensor dx = pool.backward(g);
  EXPECT_EQ(dx[1], 1.0f);
  EXPECT_EQ(dx[2], 2.0f);
  EXPECT_EQ(dx[0], 0.0f);
}

TEST(MaxPool1d, WindowLongerThanSignalThrows) {
  nn::MaxPool1d pool(8);
  Tensor x({1, 1, 1, 4});
  EXPECT_THROW(pool.forward(x, false), CheckError);
}

TEST(Har, ShapesAndBalancedLabels) {
  HarConfig cfg;
  cfg.num_samples = 60;
  cfg.activities = 6;
  Dataset ds = make_har(cfg);
  EXPECT_EQ(ds.images().shape(), Shape({60, 3, 1, 64}));
  std::map<int, int> counts;
  for (auto l : ds.labels()) counts[l]++;
  EXPECT_EQ(counts.size(), 6u);
  for (auto& [cls, n] : counts) EXPECT_EQ(n, 10);
}

TEST(Har, DeterministicUnderSeed) {
  HarConfig cfg;
  cfg.num_samples = 20;
  auto a = make_har(cfg);
  auto b = make_har(cfg);
  for (std::int64_t i = 0; i < a.images().size(); ++i)
    EXPECT_EQ(a.images()[i], b.images()[i]);
}

TEST(Har, CnnLearnsTheTask) {
  HarConfig cfg;
  cfg.num_samples = 240;
  cfg.activities = 4;
  cfg.length = 32;
  Dataset train = make_har(cfg);
  auto test_cfg = cfg;
  test_cfg.num_samples = 80;
  test_cfg.seed = 999;
  Dataset test = make_har(test_cfg);
  nn::Model model = make_har_cnn(32, 4, 3);
  std::vector<std::int32_t> idx(static_cast<std::size_t>(train.size()));
  for (std::int64_t i = 0; i < train.size(); ++i)
    idx[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i);
  BatchLoader loader(&train, idx, 16, Rng(5));
  nn::Sgd opt(0.05f, 0.9f);
  for (int step = 0; step < 120; ++step) {
    auto b = loader.next();
    model.train_batch(b, opt);
  }
  EXPECT_GT(model.accuracy(test.all()), 0.7);
}

TEST(Har, InvalidConfigThrows) {
  HarConfig cfg;
  cfg.num_samples = 0;
  EXPECT_THROW(make_har(cfg), CheckError);
  EXPECT_THROW(make_har_cnn(30, 4, 1), CheckError);  // not divisible by 4
}

}  // namespace
}  // namespace adafl::data
