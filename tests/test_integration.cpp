// Cross-module integration tests: full FedAvg-vs-AdaFL comparisons on a
// small but non-trivial task, exercising data -> nn -> fl -> core -> metrics
// together.
#include <gtest/gtest.h>

#include "core/adafl_async.h"
#include "core/adafl_sync.h"
#include "data/synthetic.h"
#include "fl/async_trainer.h"
#include "fl/sync_trainer.h"

namespace adafl {
namespace {

struct Task {
  data::Dataset train;
  data::Dataset test;
  data::Partition parts;
  nn::ModelFactory factory;
  fl::ClientTrainConfig client;
};

Task make_task(bool iid) {
  data::SyntheticConfig cfg;
  cfg.spec = {1, 8, 8, 4};
  cfg.num_samples = 400;
  cfg.noise_stddev = 0.35;
  cfg.max_shift = 1;
  cfg.proto_seed = 55;
  cfg.seed = 2;
  Task t{data::make_synthetic(cfg), {}, {}, nullptr, {}};
  auto test_cfg = cfg;
  test_cfg.num_samples = 120;
  test_cfg.seed = 9002;
  t.test = data::make_synthetic(test_cfg);
  tensor::Rng rng(3);
  t.parts = iid ? data::partition_iid(t.train.size(), 5, rng)
                : data::partition_shards(t.train.labels(), 5, 2, rng);
  t.factory = nn::mlp_factory(cfg.spec, 32, 7);
  t.client.batch_size = 16;
  t.client.local_steps = 5;
  t.client.lr = 0.1f;
  return t;
}

TEST(Integration, AdaFlMatchesFedAvgAccuracyAtFractionOfCost) {
  Task task = make_task(/*iid=*/true);
  const int rounds = 30;

  fl::SyncConfig avg_cfg;
  avg_cfg.algo = fl::Algorithm::kFedAvg;
  avg_cfg.rounds = rounds;
  avg_cfg.participation = 0.6;
  avg_cfg.client = task.client;
  avg_cfg.seed = 4;
  fl::SyncTrainer fedavg(avg_cfg, task.factory, &task.train, task.parts,
                         &task.test);
  auto avg_log = fedavg.run();

  core::AdaFlSyncConfig ada_cfg;
  ada_cfg.rounds = rounds;
  ada_cfg.client = task.client;
  ada_cfg.seed = 4;
  ada_cfg.params.max_selected = 3;
  ada_cfg.params.compression.warmup_rounds = 4;
  ada_cfg.params.compression.ratio_max = 32.0;
  core::AdaFlSyncTrainer adafl(ada_cfg, task.factory, &task.train, task.parts,
                               &task.test);
  auto ada_log = adafl.run();

  EXPECT_GT(avg_log.final_accuracy(), 0.7);
  // AdaFL must stay within a modest accuracy band of FedAvg...
  EXPECT_GT(ada_log.best_accuracy(), avg_log.best_accuracy() - 0.15);
  // ...while uploading several times less. The band is 2.5x rather than a
  // sharper bound because the adaptive compression controller reacts to
  // float-level loss differences between kernel backends, and the realized
  // ratio moves a few percent across them.
  EXPECT_LT(ada_log.ledger.total_upload_bytes(),
            avg_log.ledger.total_upload_bytes() * 2 / 5);
}

TEST(Integration, AdaFlAsyncCheaperThanFedAsync) {
  Task task = make_task(/*iid=*/true);

  fl::AsyncConfig async_cfg;
  async_cfg.algo = fl::AsyncAlgorithm::kFedAsync;
  async_cfg.duration = 5.0;
  async_cfg.eval_interval = 1.0;
  async_cfg.client = task.client;
  async_cfg.seed = 6;
  fl::AsyncTrainer fedasync(async_cfg, task.factory, &task.train, task.parts,
                            &task.test);
  auto async_log = fedasync.run();

  core::AdaFlAsyncConfig ada_cfg;
  ada_cfg.duration = 5.0;
  ada_cfg.eval_interval = 1.0;
  ada_cfg.client = task.client;
  ada_cfg.seed = 6;
  ada_cfg.params.compression.warmup_rounds = 2;
  ada_cfg.params.compression.ratio_max = 32.0;
  core::AdaFlAsyncTrainer adafl(ada_cfg, task.factory, &task.train,
                                task.parts, &task.test);
  auto ada_log = adafl.run();

  EXPECT_GT(async_log.final_accuracy(), 0.6);
  EXPECT_GT(ada_log.final_accuracy(), 0.6);
  // Same simulated time budget, far fewer bytes on the uplink.
  EXPECT_LT(ada_log.ledger.total_upload_bytes(),
            async_log.ledger.total_upload_bytes() / 2);
}

TEST(Integration, NonIidIsHarderThanIidForFedAvg) {
  Task iid = make_task(true);
  Task noniid = make_task(false);
  auto run = [&](Task& task) {
    fl::SyncConfig cfg;
    cfg.algo = fl::Algorithm::kFedAvg;
    cfg.rounds = 12;
    cfg.client = task.client;
    cfg.seed = 8;
    fl::SyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
    return t.run().final_accuracy();
  };
  // Qualitative paper phenomenon: non-IID slows convergence.
  EXPECT_GT(run(iid), run(noniid) - 0.02);
}

TEST(Integration, ModerateDropoutBarelyHurtsAccuracy) {
  // The paper's headline empirical insight (Fig. 1): ~20% unreliable
  // clients change final accuracy only marginally.
  Task task = make_task(true);
  auto run = [&](double unreliable) {
    fl::SyncConfig cfg;
    cfg.algo = fl::Algorithm::kFedAvg;
    cfg.rounds = 25;
    cfg.client = task.client;
    cfg.seed = 10;
    cfg.faults.kind = fl::FaultKind::kDropout;
    cfg.faults.unreliable_fraction = unreliable;
    fl::SyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
    return t.run().final_accuracy();
  };
  const double clean = run(0.0);
  const double faulty = run(0.2);
  EXPECT_GT(clean, 0.7);
  EXPECT_GT(faulty, clean - 0.1);
}

}  // namespace
}  // namespace adafl
