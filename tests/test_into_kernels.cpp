// Bitwise equivalence of every `_into` kernel against its allocating twin.
//
// The zero-allocation hot path is only admissible because each `_into`
// variant shares its loop body (and therefore its floating-point
// accumulation order) with the allocating form. These tests pin that
// contract on randomized shapes: any divergence — including a single ULP —
// fails.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "compress/codec.h"
#include "compress/dgc.h"
#include "compress/wire.h"
#include "data/synthetic.h"
#include "nn/loss.h"
#include "tensor/arena.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace adafl {
namespace {

using tensor::Shape;
using tensor::Tensor;

bool bitwise_equal(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() && bitwise_equal(a.flat(), b.flat());
}

TEST(IntoKernels, MatmulTwinsBitwiseOnRandomShapes) {
  tensor::Rng rng(11);
  // (m, k, n) triples chosen to cross the blocking boundaries.
  const std::int64_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 7}, {17, 33, 9}, {64, 64, 64}, {65, 31, 130}};
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], k = s[1], n = s[2];
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);

    Tensor c({m, n});  // zero-filled: matmul_into accumulates
    tensor::matmul_into(a, b, c);
    EXPECT_TRUE(bitwise_equal(tensor::matmul(a, b), c)) << m << "x" << k;

    Tensor at = Tensor::randn({k, m}, rng);
    Tensor ctn({m, n});
    tensor::matmul_tn_into(at, b, ctn);
    EXPECT_TRUE(bitwise_equal(tensor::matmul_tn(at, b), ctn));

    Tensor bt = Tensor::randn({n, k}, rng);
    Tensor cnt({m, n});
    tensor::matmul_nt_into(a, bt, cnt);
    EXPECT_TRUE(bitwise_equal(tensor::matmul_nt(a, bt), cnt));
  }
}

TEST(IntoKernels, MatmulIntoAccumulates) {
  tensor::Rng rng(3);
  Tensor a = Tensor::randn({4, 6}, rng);
  Tensor b = Tensor::randn({6, 5}, rng);
  Tensor c({4, 5});
  tensor::matmul_into(a, b, c);
  Tensor twice = c;  // c now holds A*B; a second call must add another A*B
  tensor::matmul_into(a, b, twice);
  const Tensor once = tensor::matmul(a, b);
  // The property under test is accumulate-vs-overwrite (a violation is off
  // by a whole A*B term); the tolerance only absorbs backend rounding — an
  // FMA chain over pre-loaded C is not bitwise "product then one add".
  for (std::int64_t i = 0; i < twice.size(); ++i) {
    const float expect = c.flat()[i] + once.flat()[i];
    EXPECT_NEAR(twice.flat()[i], expect,
                1e-5f * std::max(1.0f, std::abs(expect)));
  }
}

TEST(IntoKernels, LogSoftmaxRowsBitwise) {
  tensor::Rng rng(5);
  for (std::int64_t rows : {1, 7, 32}) {
    for (std::int64_t cols : {2, 10, 65}) {
      Tensor logits = Tensor::randn({rows, cols}, rng, 0.0f, 3.0f);
      Tensor out({rows, cols});
      tensor::log_softmax_rows_into(logits, out);
      EXPECT_TRUE(bitwise_equal(tensor::log_softmax_rows(logits), out));
    }
  }
}

TEST(IntoKernels, SoftmaxCrossEntropyBitwise) {
  tensor::Rng rng(9);
  tensor::Workspace ws;
  for (std::int64_t n : {1, 13, 40}) {
    const std::int64_t classes = 10;
    Tensor logits = Tensor::randn({n, classes}, rng, 0.0f, 2.0f);
    std::vector<std::int32_t> labels(static_cast<std::size_t>(n));
    for (auto& l : labels)
      l = static_cast<std::int32_t>(rng.uniform_index(static_cast<std::uint64_t>(classes)));

    const nn::LossResult ref = nn::softmax_cross_entropy(logits, labels);
    Tensor grad({n, classes});
    const float loss =
        nn::softmax_cross_entropy_into(logits, labels, grad, ws);
    EXPECT_EQ(loss, ref.loss);
    EXPECT_TRUE(bitwise_equal(ref.grad, grad));
  }
}

TEST(IntoKernels, ElementwiseIntoMatchesReference) {
  tensor::Rng rng(21);
  Tensor a = Tensor::randn({6, 9}, rng);
  Tensor b = Tensor::randn({6, 9}, rng);
  Tensor out({6, 9}), mask({6, 9});

  tensor::add_into(a, b, out);
  for (std::int64_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out.flat()[i], a.flat()[i] + b.flat()[i]);

  tensor::mul_into(a, b, out);
  for (std::int64_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out.flat()[i], a.flat()[i] * b.flat()[i]);

  tensor::scale_into(a, 0.25f, out);
  for (std::int64_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out.flat()[i], 0.25f * a.flat()[i]);

  tensor::relu_into(a, out, mask);
  for (std::int64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.flat()[i], a.flat()[i] > 0.0f ? a.flat()[i] : 0.0f);
    EXPECT_EQ(mask.flat()[i], a.flat()[i] > 0.0f ? 1.0f : 0.0f);
  }
}

TEST(IntoKernels, TopKIntoMatchesIncludingTies) {
  tensor::Rng rng(31);
  std::vector<std::uint32_t> out, scratch;
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.uniform_index(200));
    const std::int64_t k = 1 + static_cast<std::int64_t>(rng.uniform_index(static_cast<std::uint64_t>(n)));
    std::vector<float> v(static_cast<std::size_t>(n));
    // Coarse quantization forces magnitude ties, exercising the
    // lower-index tie-break both paths must share.
    for (auto& x : v)
      x = 0.5f * static_cast<float>(
                     static_cast<int>(rng.normal() * 2.0));
    const auto ref = compress::top_k_by_magnitude(v, k);
    compress::top_k_by_magnitude_into(v, k, out, scratch);
    EXPECT_EQ(ref, out) << "n=" << n << " k=" << k;
  }
}

TEST(IntoKernels, EncodeTopKIntoBitwiseAndFieldReset) {
  tensor::Rng rng(37);
  std::vector<float> v(300);
  for (auto& x : v) x = static_cast<float>(rng.normal());

  compress::EncodedGradient reused;
  // Poison every field the encoder must reset.
  reused.levels.assign(64, 3);
  reused.scale = 123.0f;
  reused.quant_levels = 8;
  reused.indices.assign(512, 7);
  reused.values.assign(512, -1.0f);
  std::vector<std::uint32_t> scratch;

  for (std::int64_t k : {1, 30, 300}) {
    const auto ref = compress::encode_top_k(v, k);
    compress::encode_top_k_into(v, k, reused, scratch);
    EXPECT_EQ(reused.kind, ref.kind);
    EXPECT_EQ(reused.dense_size, ref.dense_size);
    EXPECT_EQ(reused.wire_bytes, ref.wire_bytes);
    EXPECT_EQ(reused.indices, ref.indices);
    EXPECT_TRUE(bitwise_equal(reused.values, ref.values));
    EXPECT_TRUE(reused.levels.empty());
    EXPECT_EQ(reused.scale, ref.scale);
    EXPECT_EQ(reused.quant_levels, ref.quant_levels);
  }
}

TEST(IntoKernels, DecodeIntoBitwise) {
  tensor::Rng rng(41);
  std::vector<float> v(128);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  const auto msg = compress::encode_top_k(v, 16);
  std::vector<float> dense(7, 99.0f);  // wrong size + stale data
  msg.decode_into(dense);
  EXPECT_TRUE(bitwise_equal(msg.decode(), dense));
}

TEST(IntoKernels, DgcCompressIntoBitwiseTwins) {
  // Two compressors with identical config fed the identical gradient
  // sequence — one through compress(), one through compress_into() with a
  // reused message — must stay bitwise identical round after round
  // (momentum + residual state included).
  const std::int64_t dim = 600;
  compress::DgcConfig cfg;
  cfg.momentum = 0.9f;
  compress::DgcCompressor alloc_path(dim, cfg);
  compress::DgcCompressor into_path(dim, cfg);

  tensor::Rng rng(53);
  compress::EncodedGradient reused;
  for (int round = 0; round < 6; ++round) {
    std::vector<float> grad(static_cast<std::size_t>(dim));
    for (auto& g : grad) g = static_cast<float>(rng.normal());
    const double ratio = round % 2 == 0 ? 0.0 : 32.0;

    const auto ref = alloc_path.compress(grad, ratio);
    into_path.compress_into(grad, ratio, reused);
    EXPECT_EQ(reused.indices, ref.indices) << "round " << round;
    EXPECT_TRUE(bitwise_equal(reused.values, ref.values));
    EXPECT_EQ(reused.wire_bytes, ref.wire_bytes);
    EXPECT_EQ(reused.dense_size, ref.dense_size);
  }
}

TEST(IntoKernels, WireSerializeIntoBitwise) {
  tensor::Rng rng(61);
  std::vector<float> v(200);
  for (auto& x : v) x = static_cast<float>(rng.normal());

  std::vector<std::uint8_t> buf(5, 0xAB);  // stale bytes must vanish
  for (std::int64_t k : {200, 20, 3}) {
    const auto msg = compress::encode_top_k(v, k);
    const auto ref = compress::serialize(msg);
    compress::serialize_into(msg, buf);
    EXPECT_EQ(ref, buf);
  }
}

TEST(IntoKernels, WireDeserializeIntoResetsEveryField) {
  tensor::Rng rng(67);
  std::vector<float> v(150);
  for (auto& x : v) x = static_cast<float>(rng.normal());

  // First frame: a large top-k message to stretch the reused vectors.
  compress::EncodedGradient reused;
  compress::deserialize_into(compress::serialize(compress::encode_top_k(v, 100)),
                             reused);
  EXPECT_EQ(reused.indices.size(), 100u);

  // Second frame: a smaller message — the reused struct must equal a fresh
  // deserialize in every field, with no leak from frame one.
  const auto small = compress::serialize(compress::encode_top_k(v, 4));
  const auto ref = compress::deserialize(small);
  compress::deserialize_into(small, reused);
  EXPECT_EQ(reused.kind, ref.kind);
  EXPECT_EQ(reused.dense_size, ref.dense_size);
  EXPECT_EQ(reused.wire_bytes, ref.wire_bytes);
  EXPECT_EQ(reused.indices, ref.indices);
  EXPECT_TRUE(bitwise_equal(reused.values, ref.values));
  EXPECT_EQ(reused.levels, ref.levels);
  EXPECT_EQ(reused.scale, ref.scale);
  EXPECT_EQ(reused.quant_levels, ref.quant_levels);
}

TEST(IntoKernels, DatasetGatherIntoAndNextIntoBitwise) {
  data::SyntheticConfig cfg;
  cfg.spec = {1, 8, 8, 4};
  cfg.num_samples = 60;
  cfg.seed = 5;
  const data::Dataset ds = data::make_synthetic(cfg);

  const std::vector<std::int32_t> idx{3, 0, 59, 17, 17};
  nn::Batch reused;
  reused.labels.assign(40, -1);
  ds.gather_into(idx, reused);
  const nn::Batch ref = ds.gather(idx);
  EXPECT_TRUE(bitwise_equal(ref.inputs, reused.inputs));
  EXPECT_EQ(ref.labels, reused.labels);

  // Two loaders with the same seed must emit identical batch streams
  // whether drawn via next() or next_into().
  std::vector<std::int32_t> all(60);
  for (int i = 0; i < 60; ++i) all[i] = i;
  data::BatchLoader a(&ds, all, 16, tensor::Rng(99));
  data::BatchLoader b(&ds, all, 16, tensor::Rng(99));
  nn::Batch batch;
  for (int step = 0; step < 10; ++step) {
    const nn::Batch want = a.next();
    b.next_into(batch);
    EXPECT_TRUE(bitwise_equal(want.inputs, batch.inputs)) << "step " << step;
    EXPECT_EQ(want.labels, batch.labels);
  }
}

}  // namespace
}  // namespace adafl
