#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pool.h"
#include "nn/sequential.h"

namespace adafl::nn {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(1);
  Linear lin(3, 2, rng);
  Tensor x({4, 3}, 1.0f);
  Tensor y = lin.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({4, 2}));
}

TEST(Linear, RejectsWrongInputWidth) {
  Rng rng(1);
  Linear lin(3, 2, rng);
  Tensor x({4, 5});
  EXPECT_THROW(lin.forward(x, false), CheckError);
}

TEST(Linear, BackwardBeforeForwardThrows) {
  Rng rng(1);
  Linear lin(3, 2, rng);
  EXPECT_THROW(lin.backward(Tensor({1, 2})), CheckError);
}

TEST(Linear, GradientCheck) {
  Rng rng(2);
  Linear lin(5, 4, rng);
  Tensor x = Tensor::randn({3, 5}, rng);
  testing::check_layer_gradients(lin, x, 99);
}

TEST(Conv2d, OutputShape) {
  Rng rng(3);
  Conv2d conv(2, 6, 3, rng, /*stride=*/2, /*pad=*/1);
  Tensor x = Tensor::randn({2, 2, 9, 9}, rng);
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({2, 6, 5, 5}));
}

TEST(Conv2d, GradientCheck) {
  Rng rng(4);
  Conv2d conv(2, 3, 3, rng, 1, 1);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  testing::check_layer_gradients(conv, x, 100);
}

TEST(Conv2d, GradientCheckStridedUnpadded) {
  Rng rng(5);
  Conv2d conv(1, 2, 3, rng, 2, 0);
  Tensor x = Tensor::randn({1, 1, 7, 7}, rng);
  testing::check_layer_gradients(conv, x, 101);
}

TEST(Conv2d, MatchesHandComputedValue) {
  Rng rng(6);
  Conv2d conv(1, 1, 2, rng, 1, 0);
  // Overwrite weights with a known kernel.
  std::vector<ParamRef> params;
  conv.collect_params(params);
  ASSERT_EQ(params.size(), 2u);
  auto w = params[0].value->flat();  // [1, 4]
  w[0] = 1;
  w[1] = 0;
  w[2] = 0;
  w[3] = -1;  // difference of diagonal pixels
  params[1].value->fill(0.5f);       // bias
  Tensor x({1, 1, 2, 2}, std::vector<float>{3, 7, 2, 10});
  Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.size(), 1);
  EXPECT_FLOAT_EQ(y[0], 3 - 10 + 0.5f);
}

TEST(MaxPool2d, ForwardSelectsMaxima) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 4},
           std::vector<float>{1, 5, 2, 0, 3, -1, 7, 7});
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 7.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 9, 2, 3});
  pool.forward(x, false);
  Tensor g({1, 1, 1, 1}, std::vector<float>{2.5f});
  Tensor dx = pool.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 2.5f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
  EXPECT_FLOAT_EQ(dx[3], 0.0f);
}

TEST(MaxPool2d, WindowLargerThanInputThrows) {
  MaxPool2d pool(4);
  Tensor x({1, 1, 2, 2});
  EXPECT_THROW(pool.forward(x, false), CheckError);
}

TEST(GlobalAvgPool, ForwardAveragesAndBackwardSpreads) {
  GlobalAvgPool gap;
  Tensor x({1, 2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 10, 10, 10});
  Tensor y = gap.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 10.0f);
  Tensor g({1, 2}, std::vector<float>{4.0f, 8.0f});
  Tensor dx = gap.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 1.0f);
  EXPECT_FLOAT_EQ(dx[4], 2.0f);
}

TEST(ReLU, ForwardBackward) {
  ReLU relu;
  Tensor x({4}, std::vector<float>{-1, 0, 2, -3});
  Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  Tensor g({4}, std::vector<float>{1, 1, 1, 1});
  Tensor dx = relu.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[2], 1.0f);
}

TEST(Tanh, GradientCheck) {
  Rng rng(7);
  Tanh t;
  Tensor x = Tensor::randn({2, 6}, rng);
  testing::check_layer_gradients(t, x, 102);
}

TEST(Flatten, RoundTrip) {
  Flatten f;
  Rng rng(8);
  Tensor x = Tensor::randn({2, 3, 4, 5}, rng);
  Tensor y = f.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({2, 60}));
  Tensor dx = f.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout d(0.5, Rng(1));
  Rng rng(9);
  Tensor x = Tensor::randn({100}, rng);
  Tensor y = d.forward(x, /*training=*/false);
  for (std::int64_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainingPreservesExpectation) {
  Dropout d(0.4, Rng(2));
  Tensor x({20000}, 1.0f);
  Tensor y = d.forward(x, true);
  double sum = 0.0;
  for (float v : y.flat()) sum += v;
  EXPECT_NEAR(sum / 20000.0, 1.0, 0.05);
}

TEST(Dropout, InvalidProbabilityThrows) {
  EXPECT_THROW(Dropout(1.0, Rng(1)), CheckError);
  EXPECT_THROW(Dropout(-0.1, Rng(1)), CheckError);
}

TEST(Sequential, ComposesForwardAndBackward) {
  Rng rng(10);
  Sequential seq;
  seq.emplace<Linear>(6, 4, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(4, 2, rng);
  Tensor x = Tensor::randn({3, 6}, rng);
  testing::check_layer_gradients(seq, x, 103);
}

TEST(Sequential, CollectsAllParams) {
  Rng rng(11);
  Sequential seq;
  seq.emplace<Linear>(3, 3, rng);
  seq.emplace<Linear>(3, 2, rng);
  std::vector<ParamRef> params;
  seq.collect_params(params);
  EXPECT_EQ(params.size(), 4u);  // two weights + two biases
}

TEST(Sequential, AddNullThrows) {
  Sequential seq;
  EXPECT_THROW(seq.add(nullptr), CheckError);
}

TEST(ResidualBlock, IdentitySkipGradientCheck) {
  Rng rng(12);
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(2, 2, 3, rng, 1, 1);
  ResidualBlock block(std::move(body), 2, 2, 1, rng);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  testing::check_layer_gradients(block, x, 104);
}

TEST(ResidualBlock, ProjectionSkipGradientCheck) {
  Rng rng(13);
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(2, 4, 3, rng, 2, 1);
  ResidualBlock block(std::move(body), 2, 4, 2, rng);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  testing::check_layer_gradients(block, x, 105);
}

TEST(ResidualBlock, OutputIsNonNegative) {
  Rng rng(14);
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(1, 1, 3, rng, 1, 1);
  ResidualBlock block(std::move(body), 1, 1, 1, rng);
  Tensor x = Tensor::randn({2, 1, 4, 4}, rng);
  Tensor y = block.forward(x, false);
  for (float v : y.flat()) EXPECT_GE(v, 0.0f);  // final ReLU
}

}  // namespace
}  // namespace adafl::nn
