#include "net/link.h"

#include <gtest/gtest.h>

#include "tensor/check.h"

namespace adafl::net {
namespace {

using tensor::Rng;

TEST(BandwidthTrace, ConstantIsAlwaysOne) {
  auto t = BandwidthTrace::constant();
  EXPECT_EQ(t.multiplier(0.0), 1.0);
  EXPECT_EQ(t.multiplier(1e6), 1.0);
}

TEST(BandwidthTrace, PeriodicAlternates) {
  auto t = BandwidthTrace::periodic(10.0, 5.0, 0.2);
  EXPECT_EQ(t.multiplier(0.0), 1.0);
  EXPECT_EQ(t.multiplier(9.9), 1.0);
  EXPECT_EQ(t.multiplier(10.1), 0.2);
  EXPECT_EQ(t.multiplier(14.9), 0.2);
  EXPECT_EQ(t.multiplier(15.1), 1.0);  // next cycle
}

TEST(BandwidthTrace, PeriodicOffsetShiftsPhase) {
  auto t = BandwidthTrace::periodic(10.0, 5.0, 0.2, 12.0);
  EXPECT_EQ(t.multiplier(0.0), 0.2);  // phase 12 is inside the bad window
}

TEST(BandwidthTrace, RandomWalkBoundedAndDeterministic) {
  auto a = BandwidthTrace::random_walk(7, 1.0, 0.3, 0.1, 100.0);
  auto b = BandwidthTrace::random_walk(7, 1.0, 0.3, 0.1, 100.0);
  for (double t = 0.0; t < 100.0; t += 3.7) {
    const double m = a.multiplier(t);
    EXPECT_GE(m, 0.1);
    EXPECT_LE(m, 1.0);
    EXPECT_EQ(m, b.multiplier(t));
  }
}

TEST(BandwidthTrace, RandomWalkClampsBeyondHorizon) {
  auto t = BandwidthTrace::random_walk(7, 1.0, 0.3, 0.1, 10.0);
  EXPECT_EQ(t.multiplier(1e9), t.multiplier(10.0));
}

TEST(BandwidthTrace, InvalidArgsThrow) {
  EXPECT_THROW(BandwidthTrace::periodic(0.0, 1.0, 0.5), CheckError);
  EXPECT_THROW(BandwidthTrace::periodic(1.0, 1.0, 1.5), CheckError);
  EXPECT_THROW(BandwidthTrace::random_walk(1, 0.0, 0.1, 0.5, 10), CheckError);
  auto t = BandwidthTrace::constant();
  EXPECT_THROW(t.multiplier(-1.0), CheckError);
}

TEST(Link, TransferDurationIsLatencyPlusSerialization) {
  LinkConfig cfg;
  cfg.up_bw = 1000.0;
  cfg.down_bw = 2000.0;
  cfg.latency = 0.5;
  cfg.jitter = 0.0;
  Link link(cfg, Rng(1));
  auto up = link.upload(3000, 0.0);
  EXPECT_TRUE(up.delivered);
  EXPECT_DOUBLE_EQ(up.duration, 0.5 + 3.0);
  auto down = link.download(3000, 0.0);
  EXPECT_DOUBLE_EQ(down.duration, 0.5 + 1.5);
}

TEST(Link, JitterStaysWithinBounds) {
  LinkConfig cfg;
  cfg.up_bw = 1e6;
  cfg.latency = 0.1;
  cfg.jitter = 0.05;
  Link link(cfg, Rng(2));
  for (int i = 0; i < 200; ++i) {
    auto r = link.upload(0, 0.0);
    EXPECT_GE(r.duration, 0.05 - 1e-12);
    EXPECT_LE(r.duration, 0.15 + 1e-12);
  }
}

TEST(Link, DropProbabilityObserved) {
  LinkConfig cfg;
  cfg.drop_prob = 0.4;
  Link link(cfg, Rng(3));
  int dropped = 0;
  constexpr int n = 5000;
  for (int i = 0; i < n; ++i)
    if (!link.upload(100, 0.0).delivered) ++dropped;
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.4, 0.03);
}

TEST(Link, TraceScalesBandwidth) {
  LinkConfig cfg;
  cfg.up_bw = 1000.0;
  cfg.latency = 0.0;
  Link link(cfg, BandwidthTrace::periodic(10, 10, 0.5),
            BandwidthTrace::constant(), Rng(4));
  EXPECT_DOUBLE_EQ(link.upload(1000, 0.0).duration, 1.0);
  EXPECT_DOUBLE_EQ(link.upload(1000, 15.0).duration, 2.0);  // degraded window
}

TEST(Link, InvalidConfigThrows) {
  LinkConfig bad;
  bad.up_bw = 0.0;
  EXPECT_THROW(Link(bad, Rng(1)), CheckError);
  LinkConfig bad2;
  bad2.drop_prob = 1.0;
  EXPECT_THROW(Link(bad2, Rng(1)), CheckError);
  LinkConfig ok;
  Link link(ok, Rng(1));
  EXPECT_THROW(link.upload(-1, 0.0), CheckError);
}

TEST(Presets, AreOrderedByQuality) {
  EXPECT_GT(preset(LinkQuality::kExcellent).up_bw,
            preset(LinkQuality::kGood).up_bw);
  EXPECT_GT(preset(LinkQuality::kGood).up_bw,
            preset(LinkQuality::kCongested).up_bw);
  EXPECT_GT(preset(LinkQuality::kLossy).drop_prob, 0.0);
}

TEST(MakeFleet, SplitsByFraction) {
  auto fleet = make_fleet(10, 0.3, LinkQuality::kGood, LinkQuality::kLossy);
  ASSERT_EQ(fleet.size(), 10u);
  for (int i = 0; i < 3; ++i) EXPECT_GT(fleet[i].drop_prob, 0.0);
  for (int i = 3; i < 10; ++i) EXPECT_EQ(fleet[i].drop_prob, 0.0);
}

TEST(MakeFleet, RoundsToNearest) {
  auto fleet = make_fleet(10, 0.25, LinkQuality::kGood, LinkQuality::kLossy);
  int bad = 0;
  for (const auto& c : fleet)
    if (c.drop_prob > 0.0) ++bad;
  EXPECT_EQ(bad, 3);  // lround(2.5) == 3
}

TEST(MakeFleet, InvalidArgsThrow) {
  EXPECT_THROW(make_fleet(0, 0.5, LinkQuality::kGood, LinkQuality::kLossy),
               CheckError);
  EXPECT_THROW(make_fleet(5, 1.5, LinkQuality::kGood, LinkQuality::kLossy),
               CheckError);
}

}  // namespace
}  // namespace adafl::net
