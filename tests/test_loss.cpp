#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace adafl::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits({2, 4}, 0.0f);
  std::vector<std::int32_t> labels{1, 3};
  auto r = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionNearZeroLoss) {
  Tensor logits({1, 3}, std::vector<float>{100.0f, 0.0f, 0.0f});
  std::vector<std::int32_t> labels{0};
  auto r = softmax_cross_entropy(logits, labels);
  EXPECT_LT(r.loss, 1e-4);
}

TEST(SoftmaxCrossEntropy, GradientIsSoftmaxMinusOnehotOverN) {
  Tensor logits({1, 3}, std::vector<float>{1.0f, 2.0f, 3.0f});
  std::vector<std::int32_t> labels{2};
  auto r = softmax_cross_entropy(logits, labels);
  Tensor p = tensor::softmax_rows(logits);
  EXPECT_NEAR(r.grad[0], p[0], 1e-6);
  EXPECT_NEAR(r.grad[1], p[1], 1e-6);
  EXPECT_NEAR(r.grad[2], p[2] - 1.0f, 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  Rng rng(3);
  Tensor logits = Tensor::randn({5, 7}, rng);
  std::vector<std::int32_t> labels{0, 1, 2, 3, 4};
  auto r = softmax_cross_entropy(logits, labels);
  for (std::int64_t i = 0; i < 5; ++i) {
    double s = 0.0;
    for (std::int64_t j = 0; j < 7; ++j) s += r.grad[i * 7 + j];
    EXPECT_NEAR(s, 0.0, 1e-5);
  }
}

TEST(SoftmaxCrossEntropy, NumericalGradientCheck) {
  Rng rng(4);
  Tensor logits = Tensor::randn({3, 5}, rng);
  std::vector<std::int32_t> labels{1, 0, 4};
  auto r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float num = (softmax_cross_entropy(lp, labels).loss -
                       softmax_cross_entropy(lm, labels).loss) /
                      (2 * eps);
    EXPECT_NEAR(r.grad[i], num, 1e-3) << "at " << i;
  }
}

TEST(SoftmaxCrossEntropy, LabelOutOfRangeThrows) {
  Tensor logits({1, 3});
  std::vector<std::int32_t> bad{3};
  EXPECT_THROW(softmax_cross_entropy(logits, bad), CheckError);
  std::vector<std::int32_t> neg{-1};
  EXPECT_THROW(softmax_cross_entropy(logits, neg), CheckError);
}

TEST(SoftmaxCrossEntropy, LabelCountMismatchThrows) {
  Tensor logits({2, 3});
  std::vector<std::int32_t> labels{0};
  EXPECT_THROW(softmax_cross_entropy(logits, labels), CheckError);
}

}  // namespace
}  // namespace adafl::nn
