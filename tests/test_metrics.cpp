#include <gtest/gtest.h>

#include <cmath>

#include "tensor/check.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "metrics/ledger.h"
#include "metrics/stats.h"
#include "metrics/table.h"

namespace adafl::metrics {
namespace {

TEST(RunningStat, MatchesDirectComputation) {
  RunningStat rs;
  const double xs[] = {1.0, 2.0, 4.0, 8.0};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), 4);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.75);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 8.0);
  // Sample stddev of {1,2,4,8}: var = (7.5625+3.0625+.0625+18.0625)/3.
  EXPECT_NEAR(rs.stddev(), std::sqrt(28.75 / 3.0), 1e-12);
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat rs;
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
  rs.add(5.0);
  EXPECT_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

TEST(Summarize, VectorSummary) {
  std::vector<double> xs{2.0, 4.0, 6.0};
  auto s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
}

TEST(Series, FinalAndStepLookup) {
  Series s;
  s.add(1.0, 0.1);
  s.add(2.0, 0.5);
  s.add(4.0, 0.9);
  EXPECT_DOUBLE_EQ(s.final_y(), 0.9);
  EXPECT_DOUBLE_EQ(s.y_at(0.5), 0.1);  // before first x -> first y
  EXPECT_DOUBLE_EQ(s.y_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.y_at(3.9), 0.5);
  EXPECT_DOUBLE_EQ(s.y_at(100.0), 0.9);
}

TEST(Series, EmptyThrows) {
  Series s;
  EXPECT_THROW(s.final_y(), CheckError);
  EXPECT_THROW(s.y_at(1.0), CheckError);
}

TEST(MeanSeries, PointwiseAverage) {
  Series a, b;
  a.add(1, 0.0);
  a.add(2, 1.0);
  b.add(1, 2.0);
  b.add(2, 3.0);
  Series runs[] = {a, b};
  auto m = mean_series(runs);
  EXPECT_DOUBLE_EQ(m.y[0], 1.0);
  EXPECT_DOUBLE_EQ(m.y[1], 2.0);
}

TEST(MeanSeries, RaggedThrows) {
  Series a, b;
  a.add(1, 0.0);
  Series runs[] = {a, b};
  EXPECT_THROW(mean_series(runs), CheckError);
}

TEST(CommLedger, TracksBytesAndUpdates) {
  CommLedger l;
  l.record_upload(0, 100, true);
  l.record_upload(1, 300, false);  // lost
  l.record_download(0, 50);
  EXPECT_EQ(l.total_upload_bytes(), 400);
  EXPECT_EQ(l.total_download_bytes(), 50);
  EXPECT_EQ(l.total_bytes(), 450);
  EXPECT_EQ(l.delivered_updates(), 1);
  EXPECT_EQ(l.attempted_updates(), 2);
  EXPECT_EQ(l.upload_bytes_of(0), 100);  // uploads only
  EXPECT_EQ(l.updates_of(0), 1);
  EXPECT_EQ(l.updates_of(1), 0);
}

TEST(CommLedger, MinMaxDeliveredSizes) {
  CommLedger l;
  l.record_upload(0, 500, true);
  l.record_upload(0, 100, true);
  l.record_upload(0, 9999, false);  // lost: excluded from min/max
  EXPECT_EQ(l.min_update_bytes(), 100);
  EXPECT_EQ(l.max_update_bytes(), 500);
}

TEST(CommLedger, CostReductionFormula) {
  CommLedger l;
  l.record_upload(0, 500, true);
  // ideal: 10 updates x 100 bytes = 1000; spent 500 -> 50% reduction.
  EXPECT_DOUBLE_EQ(l.upload_cost_reduction(10, 100), 0.5);
}

TEST(CommLedger, InvalidArgsThrow) {
  CommLedger l;
  EXPECT_THROW(l.record_upload(0, -1, true), CheckError);
  EXPECT_THROW(l.upload_cost_reduction(0, 100), CheckError);
}

TEST(CommLedger, ResetClears) {
  CommLedger l;
  l.record_upload(0, 100, true);
  l.record_retransmit(0, 40);
  l.record_reconnect(0);
  l.reset();
  EXPECT_EQ(l.total_bytes(), 0);
  EXPECT_EQ(l.delivered_updates(), 0);
  EXPECT_EQ(l.total_retransmitted_bytes(), 0);
  EXPECT_EQ(l.total_reconnects(), 0);
}

TEST(CommLedger, TracksRetransmitsAndReconnects) {
  CommLedger l;
  EXPECT_EQ(l.total_retransmitted_bytes(), 0);
  EXPECT_EQ(l.total_reconnects(), 0);
  l.record_retransmit(2, 150);
  l.record_retransmit(2, 50);
  l.record_retransmit(5, 25);
  l.record_reconnect(2);
  l.record_reconnect(2);
  l.record_reconnect(7);
  EXPECT_EQ(l.total_retransmitted_bytes(), 225);
  EXPECT_EQ(l.total_reconnects(), 3);
  EXPECT_EQ(l.reconnects_of(2), 2);
  EXPECT_EQ(l.reconnects_of(7), 1);
  EXPECT_EQ(l.reconnects_of(0), 0);
  // Retransmits are overhead accounting; they do not count as updates and
  // do not inflate the directional totals by themselves.
  EXPECT_EQ(l.total_bytes(), 0);
  EXPECT_EQ(l.attempted_updates(), 0);
}

TEST(CommLedger, RetransmitRejectsNegativeBytes) {
  CommLedger l;
  EXPECT_THROW(l.record_retransmit(0, -5), CheckError);
}

TEST(Table, LedgerTableShowsResilienceColumns) {
  CommLedger l;
  l.record_upload(0, 1000, true);
  l.record_download(0, 2000);
  l.record_retransmit(0, 300);
  l.record_reconnect(0);
  std::ostringstream os;
  ledger_table(l).print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("retransmitted"), std::string::npos);
  EXPECT_NE(out.find("reconnects"), std::string::npos);
  EXPECT_NE(out.find("300B"), std::string::npos);
}

TEST(Formatting, Percent) {
  EXPECT_EQ(fmt_pct(0.9343), "93.43%");
  EXPECT_EQ(fmt_pct(0.5, 0), "50%");
  EXPECT_EQ(fmt_pct(-0.705, 1), "-70.5%");
}

TEST(Formatting, Bytes) {
  EXPECT_EQ(fmt_bytes(96), "96B");
  EXPECT_EQ(fmt_bytes(8000), "8KB");
  EXPECT_EQ(fmt_bytes(1640000), "1.64MB");
}

TEST(Formatting, Fixed) {
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_f(2.0, 0), "2");
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RaggedRowThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), CheckError);
}

TEST(Csv, WritesAndReadsBack) {
  const std::string path = ::testing::TempDir() + "adafl_test.csv";
  write_csv(path, {"x", "y"}, {{"1", "2"}, {"3", "4"}});
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x,y");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
  std::getline(f, line);
  EXPECT_EQ(line, "3,4");
  std::remove(path.c_str());
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(write_csv("/nonexistent-dir/x.csv", {"a"}, {}),
               std::runtime_error);
}

}  // namespace
}  // namespace adafl::metrics
