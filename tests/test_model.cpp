#include "nn/model.h"

#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/linear.h"
#include "nn/sequential.h"

namespace adafl::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;

Model small_model(std::uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<Sequential>();
  net->emplace<Flatten>();
  net->emplace<Linear>(8, 6, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(6, 3, rng);
  return Model(std::move(net));
}

Batch random_batch(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  Batch b;
  b.inputs = Tensor::randn({n, 8}, rng);
  for (std::int64_t i = 0; i < n; ++i)
    b.labels.push_back(static_cast<std::int32_t>(rng.uniform_index(3)));
  return b;
}

TEST(Model, ParamCountMatchesArchitecture) {
  Model m = small_model(1);
  EXPECT_EQ(m.param_count(), 8 * 6 + 6 + 6 * 3 + 3);
}

TEST(Model, FlatRoundTrip) {
  Model m = small_model(1);
  auto flat = m.get_flat();
  for (auto& v : flat) v += 1.0f;
  m.set_flat(flat);
  EXPECT_EQ(m.get_flat(), flat);
}

TEST(Model, SetFlatLengthMismatchThrows) {
  Model m = small_model(1);
  std::vector<float> wrong(10, 0.0f);
  EXPECT_THROW(m.set_flat(wrong), CheckError);
}

TEST(Model, AddFlatAppliesScaledDelta) {
  Model m = small_model(1);
  const auto before = m.get_flat();
  std::vector<float> delta(before.size(), 2.0f);
  m.add_flat(delta, -0.5f);
  const auto after = m.get_flat();
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_FLOAT_EQ(after[i], before[i] - 1.0f);
}

TEST(Model, ZeroGradClearsGradients) {
  Model m = small_model(2);
  Batch b = random_batch(4, 3);
  m.compute_gradients(b);
  m.zero_grad();
  for (float g : m.get_flat_grad()) EXPECT_EQ(g, 0.0f);
}

TEST(Model, GradientsAccumulateAcrossCalls) {
  Model m = small_model(2);
  Batch b = random_batch(4, 3);
  m.zero_grad();
  m.compute_gradients(b);
  const auto g1 = m.get_flat_grad();
  m.compute_gradients(b);
  const auto g2 = m.get_flat_grad();
  for (std::size_t i = 0; i < g1.size(); ++i)
    EXPECT_NEAR(g2[i], 2.0f * g1[i], 1e-5f + 1e-3f * std::abs(g1[i]));
}

TEST(Model, TrainingReducesLossOnFixedBatch) {
  Model m = small_model(4);
  Batch b = random_batch(16, 5);
  Sgd opt(0.1f);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 60; ++i) {
    const float loss = m.train_batch(b, opt);
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, 0.5f * first);
}

TEST(Model, AccuracyOnMemorizedBatchReachesOne) {
  Model m = small_model(6);
  Batch b = random_batch(8, 7);
  Sgd opt(0.2f);
  for (int i = 0; i < 200; ++i) m.train_batch(b, opt);
  EXPECT_GT(m.accuracy(b), 0.99);
}

TEST(Model, EmptyBatchThrows) {
  Model m = small_model(1);
  Batch empty;
  EXPECT_THROW(m.compute_gradients(empty), CheckError);
  EXPECT_THROW(m.accuracy(empty), CheckError);
}

TEST(Model, NullNetworkThrows) {
  EXPECT_THROW(Model(nullptr), CheckError);
}

TEST(Model, SameSeedFactoriesAgree) {
  Model a = small_model(42);
  Model b = small_model(42);
  EXPECT_EQ(a.get_flat(), b.get_flat());
}

TEST(Model, DifferentSeedsDiffer) {
  Model a = small_model(1);
  Model b = small_model(2);
  EXPECT_NE(a.get_flat(), b.get_flat());
}

}  // namespace
}  // namespace adafl::nn
