// Property sweep: flat parameter round-trips and gradient-length agreement
// across every architecture in the model zoo (these invariants are what the
// whole FL layer depends on).
#include <gtest/gtest.h>

#include "data/har.h"
#include "nn/models.h"

namespace adafl::nn {
namespace {

ModelFactory factory_for(int arch) {
  const ImageSpec img{3, 16, 16, 5};
  switch (arch) {
    case 0:
      return mlp_factory(img, 12, 3);
    case 1:
      return paper_cnn_factory(img, 3, /*fc_units=*/24);
    case 2:
      return resnet_lite_factory(img, 3);
    case 3:
      return vgg_lite_factory(img, 3);
    default:
      return data::har_cnn_factory(16, 5, 3);
  }
}

class FlatPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FlatPropertyTest, GetSetFlatRoundTrips) {
  Model m = factory_for(GetParam())();
  auto flat = m.get_flat();
  ASSERT_EQ(static_cast<std::int64_t>(flat.size()), m.param_count());
  // Perturb deterministically, write back, read again.
  for (std::size_t i = 0; i < flat.size(); ++i)
    flat[i] += 0.001f * static_cast<float>(i % 7);
  m.set_flat(flat);
  EXPECT_EQ(m.get_flat(), flat);
}

TEST_P(FlatPropertyTest, GradientVectorMatchesParamCount) {
  Model m = factory_for(GetParam())();
  tensor::Rng rng(9);
  Batch b;
  const bool is_har = GetParam() == 4;
  b.inputs = is_har ? tensor::Tensor::randn({4, 3, 1, 16}, rng)
                    : tensor::Tensor::randn({4, 3, 16, 16}, rng);
  for (int i = 0; i < 4; ++i) b.labels.push_back(i % 5);
  m.zero_grad();
  m.compute_gradients(b);
  const auto g = m.get_flat_grad();
  EXPECT_EQ(static_cast<std::int64_t>(g.size()), m.param_count());
  double norm = 0.0;
  for (float v : g) norm += static_cast<double>(v) * v;
  EXPECT_GT(norm, 0.0);  // gradients actually flow everywhere
}

TEST_P(FlatPropertyTest, FactoryIsDeterministic) {
  auto f = factory_for(GetParam());
  EXPECT_EQ(f().get_flat(), f().get_flat());
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, FlatPropertyTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace adafl::nn
