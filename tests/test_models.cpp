#include "nn/models.h"

#include <gtest/gtest.h>

namespace adafl::nn {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(PaperCnn, ForwardShape28x28) {
  ImageSpec spec{1, 28, 28, 10};
  Model m = make_paper_cnn(spec, 1);
  Rng rng(2);
  Tensor x = Tensor::randn({2, 1, 28, 28}, rng);
  EXPECT_EQ(m.forward(x).shape(), Shape({2, 10}));
}

TEST(PaperCnn, ForwardShape16x16) {
  ImageSpec spec{1, 16, 16, 10};
  Model m = make_paper_cnn(spec, 1);
  Rng rng(2);
  Tensor x = Tensor::randn({3, 1, 16, 16}, rng);
  EXPECT_EQ(m.forward(x).shape(), Shape({3, 10}));
}

TEST(PaperCnn, ParamCountAt28x28MatchesLeNetStyle) {
  // conv1 20*(25+... layout [20, 25]+20, conv2 [50, 20*25]+50,
  // fc1 [500, 50*16]+500, fc2 [10, 500]+10.
  ImageSpec spec{1, 28, 28, 10};
  Model m = make_paper_cnn(spec, 1);
  const std::int64_t expected = (20 * 25 + 20) + (50 * 500 + 50) +
                                (500 * 800 + 500) + (10 * 500 + 10);
  EXPECT_EQ(m.param_count(), expected);
}

TEST(PaperCnn, TooSmallInputThrows) {
  ImageSpec spec{1, 10, 10, 10};
  EXPECT_THROW(make_paper_cnn(spec, 1), CheckError);
}

TEST(ResNetLite, ForwardShape) {
  ImageSpec spec{3, 16, 16, 10};
  Model m = make_resnet_lite(spec, 1);
  Rng rng(2);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  EXPECT_EQ(m.forward(x).shape(), Shape({2, 10}));
}

TEST(VggLite, ForwardShape) {
  ImageSpec spec{3, 16, 16, 20};
  Model m = make_vgg_lite(spec, 1);
  Rng rng(2);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  EXPECT_EQ(m.forward(x).shape(), Shape({2, 20}));
}

TEST(Mlp, ForwardShape) {
  ImageSpec spec{1, 8, 8, 4};
  Model m = make_mlp(spec, 16, 1);
  Rng rng(2);
  Tensor x = Tensor::randn({5, 1, 8, 8}, rng);
  EXPECT_EQ(m.forward(x).shape(), Shape({5, 4}));
}

TEST(Factories, ProduceIdenticalModelsPerSeed) {
  ImageSpec spec{1, 16, 16, 10};
  auto f = paper_cnn_factory(spec, 7);
  Model a = f();
  Model b = f();
  EXPECT_EQ(a.get_flat(), b.get_flat());
}

// Every architecture must be able to fit a small random batch — a smoke
// test that gradients flow end to end.
struct ArchCase {
  const char* name;
  ModelFactory factory;
};

class ArchTrainingTest : public ::testing::TestWithParam<int> {};

TEST_P(ArchTrainingTest, LossDecreasesOnFixedBatch) {
  const ImageSpec spec{3, 16, 16, 4};
  ModelFactory factories[] = {
      mlp_factory(spec, 16, 1),
      paper_cnn_factory(spec, 1, /*fc_units=*/32),
      resnet_lite_factory(spec, 1),
      vgg_lite_factory(spec, 1),
  };
  Model m = factories[GetParam()]();
  Rng rng(9);
  Batch b;
  b.inputs = Tensor::randn({8, 3, 16, 16}, rng);
  for (int i = 0; i < 8; ++i)
    b.labels.push_back(static_cast<std::int32_t>(i % 4));
  Sgd opt(0.05f, 0.9f);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 30; ++i) {
    const float loss = m.train_batch(b, opt);
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ArchTrainingTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace adafl::nn
