#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace adafl::tensor {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  return c;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], tol) << "at index " << i;
}

TEST(MatMul, MatchesNaive) {
  Rng rng(1);
  Tensor a = Tensor::randn({7, 5}, rng);
  Tensor b = Tensor::randn({5, 9}, rng);
  expect_close(matmul(a, b), naive_matmul(a, b));
}

TEST(MatMul, InnerDimMismatchThrows) {
  Tensor a({2, 3}), b({4, 2});
  EXPECT_THROW(matmul(a, b), CheckError);
}

TEST(MatMul, RankCheck) {
  Tensor a({6}), b({6});
  EXPECT_THROW(matmul(a, b), CheckError);
}

TEST(MatMul, TnMatchesExplicitTranspose) {
  Rng rng(2);
  Tensor a = Tensor::randn({5, 7}, rng);  // used as A^T: result is 7 x n
  Tensor b = Tensor::randn({5, 3}, rng);
  expect_close(matmul_tn(a, b), matmul(transpose2d(a), b));
}

TEST(MatMul, NtMatchesExplicitTranspose) {
  Rng rng(3);
  Tensor a = Tensor::randn({4, 6}, rng);
  Tensor b = Tensor::randn({5, 6}, rng);
  expect_close(matmul_nt(a, b), matmul(a, transpose2d(b)));
}

TEST(Transpose2d, Involution) {
  Rng rng(4);
  Tensor a = Tensor::randn({3, 8}, rng);
  expect_close(transpose2d(transpose2d(a)), a, 0.0f);
}

TEST(Im2Col, IdentityKernelReproducesImage) {
  // kernel 1, stride 1: columns equal the image, row-major per channel.
  Rng rng(5);
  Conv2dGeom g{2, 3, 4, 1, 1, 0};
  Tensor img = Tensor::randn({2 * 3 * 4}, rng);
  Tensor cols({2, 12});
  im2col(img.flat(), g, cols);
  for (std::int64_t i = 0; i < img.size(); ++i) EXPECT_EQ(cols[i], img[i]);
}

TEST(Im2Col, KnownSmallCase) {
  // 1x3x3 image, kernel 2, stride 1 -> 4 columns of length 4.
  Conv2dGeom g{1, 3, 3, 2, 1, 0};
  Tensor img({9}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor cols({4, 4});
  im2col(img.flat(), g, cols);
  // Column for output (0,0) reads pixels (0,0),(0,1),(1,0),(1,1) = 1,2,4,5.
  EXPECT_EQ(cols.at({0, 0}), 1.0f);
  EXPECT_EQ(cols.at({1, 0}), 2.0f);
  EXPECT_EQ(cols.at({2, 0}), 4.0f);
  EXPECT_EQ(cols.at({3, 0}), 5.0f);
  // Column for output (1,1) = pixels 5,6,8,9.
  EXPECT_EQ(cols.at({0, 3}), 5.0f);
  EXPECT_EQ(cols.at({3, 3}), 9.0f);
}

TEST(Im2Col, PaddingYieldsZeros) {
  Conv2dGeom g{1, 2, 2, 3, 1, 1};
  Tensor img({4}, std::vector<float>{1, 2, 3, 4});
  Tensor cols({9, 4});
  im2col(img.flat(), g, cols);
  // First column, first kernel tap (ki=0,kj=0) reads (-1,-1): padded zero.
  EXPECT_EQ(cols.at({0, 0}), 0.0f);
}

TEST(Col2Im, IsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // property of the backward pass.
  Rng rng(6);
  Conv2dGeom g{2, 5, 5, 3, 2, 1};
  const std::int64_t img_n = 2 * 5 * 5;
  Tensor x = Tensor::randn({img_n}, rng);
  Tensor cols({2 * 9, g.out_h() * g.out_w()});
  im2col(x.flat(), g, cols);
  Tensor y = Tensor::randn(cols.shape(), rng);
  std::vector<float> xgrad(static_cast<std::size_t>(img_n), 0.0f);
  col2im(y, g, xgrad);
  const double lhs = dot(cols.flat(), y.flat());
  const double rhs = dot(x.flat(), xgrad);
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(7);
  Tensor logits = Tensor::randn({6, 10}, rng, 0.0f, 5.0f);
  Tensor p = softmax_rows(logits);
  for (std::int64_t i = 0; i < 6; ++i) {
    double s = 0.0;
    for (std::int64_t j = 0; j < 10; ++j) {
      EXPECT_GT(p[i * 10 + j], 0.0f);
      s += p[i * 10 + j];
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(LogSoftmax, NumericallyStableForLargeLogits) {
  Tensor logits({1, 3}, std::vector<float>{1000.0f, 1000.0f, 1000.0f});
  Tensor lp = log_softmax_rows(logits);
  for (std::int64_t j = 0; j < 3; ++j)
    EXPECT_NEAR(lp[j], std::log(1.0 / 3.0), 1e-4);
}

TEST(LogSoftmax, MatchesDirectComputation) {
  Tensor logits({1, 3}, std::vector<float>{0.0f, 1.0f, 2.0f});
  Tensor lp = log_softmax_rows(logits);
  const double z = std::exp(0.0) + std::exp(1.0) + std::exp(2.0);
  for (std::int64_t j = 0; j < 3; ++j)
    EXPECT_NEAR(lp[j], static_cast<double>(j) - std::log(z), 1e-5);
}

// Parameterized sweep: im2col/col2im adjointness across geometries.
struct GeomCase {
  std::int64_t c, h, w, k, s, p;
};

class Im2ColGeomTest : public ::testing::TestWithParam<GeomCase> {};

TEST_P(Im2ColGeomTest, AdjointHoldsAcrossGeometries) {
  const auto gc = GetParam();
  Conv2dGeom g{gc.c, gc.h, gc.w, gc.k, gc.s, gc.p};
  ASSERT_GT(g.out_h(), 0);
  ASSERT_GT(g.out_w(), 0);
  Rng rng(17);
  const std::int64_t img_n = gc.c * gc.h * gc.w;
  Tensor x = Tensor::randn({img_n}, rng);
  Tensor cols({gc.c * gc.k * gc.k, g.out_h() * g.out_w()});
  im2col(x.flat(), g, cols);
  Tensor y = Tensor::randn(cols.shape(), rng);
  std::vector<float> xgrad(static_cast<std::size_t>(img_n), 0.0f);
  col2im(y, g, xgrad);
  EXPECT_NEAR(dot(cols.flat(), y.flat()), dot(x.flat(), xgrad), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColGeomTest,
    ::testing::Values(GeomCase{1, 4, 4, 2, 1, 0}, GeomCase{3, 8, 8, 3, 1, 1},
                      GeomCase{2, 7, 5, 3, 2, 1}, GeomCase{1, 6, 6, 5, 1, 2},
                      GeomCase{4, 9, 9, 3, 3, 0},
                      GeomCase{2, 10, 10, 1, 2, 0}));

}  // namespace
}  // namespace adafl::tensor
