#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace adafl::nn {
namespace {

using tensor::Tensor;

struct Param {
  Tensor w, g;
  ParamRef ref() { return {&w, &g}; }
};

TEST(Sgd, PlainStep) {
  Param p{Tensor({2}, std::vector<float>{1, 2}),
          Tensor({2}, std::vector<float>{0.5f, -1.0f})};
  Sgd opt(0.1f);
  ParamRef refs[] = {p.ref()};
  opt.step(refs);
  EXPECT_FLOAT_EQ(p.w[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.w[1], 2.0f + 0.1f);
}

TEST(Sgd, MomentumAccumulates) {
  Param p{Tensor({1}, std::vector<float>{0.0f}),
          Tensor({1}, std::vector<float>{1.0f})};
  Sgd opt(1.0f, 0.5f);
  ParamRef refs[] = {p.ref()};
  opt.step(refs);  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.w[0], -1.0f);
  opt.step(refs);  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(p.w[0], -2.5f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Param p{Tensor({1}, std::vector<float>{10.0f}),
          Tensor({1}, std::vector<float>{0.0f})};
  Sgd opt(0.1f, 0.0f, 0.5f);
  ParamRef refs[] = {p.ref()};
  opt.step(refs);
  EXPECT_FLOAT_EQ(p.w[0], 10.0f - 0.1f * 0.5f * 10.0f);
}

TEST(Sgd, InvalidHyperparamsThrow) {
  EXPECT_THROW(Sgd(0.0f), CheckError);
  EXPECT_THROW(Sgd(0.1f, 1.0f), CheckError);
}

TEST(Sgd, ResetClearsVelocity) {
  Param p{Tensor({1}, std::vector<float>{0.0f}),
          Tensor({1}, std::vector<float>{1.0f})};
  Sgd opt(1.0f, 0.9f);
  ParamRef refs[] = {p.ref()};
  opt.step(refs);
  opt.reset();
  p.w[0] = 0.0f;
  opt.step(refs);
  EXPECT_FLOAT_EQ(p.w[0], -1.0f);  // no leftover momentum
}

TEST(Adam, FirstStepIsSignedLr) {
  // With bias correction, the first Adam step is ~lr * sign(g).
  Param p{Tensor({2}, std::vector<float>{0.0f, 0.0f}),
          Tensor({2}, std::vector<float>{0.3f, -7.0f})};
  Adam opt(0.01f);
  ParamRef refs[] = {p.ref()};
  opt.step(refs);
  EXPECT_NEAR(p.w[0], -0.01f, 1e-4);
  EXPECT_NEAR(p.w[1], 0.01f, 1e-4);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2.
  Param p{Tensor({1}, std::vector<float>{0.0f}), Tensor({1})};
  Adam opt(0.1f);
  ParamRef refs[] = {p.ref()};
  for (int i = 0; i < 500; ++i) {
    p.g[0] = 2.0f * (p.w[0] - 3.0f);
    opt.step(refs);
  }
  EXPECT_NEAR(p.w[0], 3.0f, 0.05f);
}

TEST(Adam, ReuseWithDifferentParamListThrows) {
  Param p{Tensor({1}), Tensor({1})};
  Adam opt(0.1f);
  ParamRef one[] = {p.ref()};
  opt.step(one);
  Param q{Tensor({1}), Tensor({1})};
  ParamRef two[] = {p.ref(), q.ref()};
  EXPECT_THROW(opt.step(two), CheckError);
}

TEST(FlatAdam, MatchesAdamOnSameTrajectory) {
  Param p{Tensor({3}, std::vector<float>{1, -2, 0.5f}), Tensor({3})};
  std::vector<float> w{1, -2, 0.5f};
  Adam layer_opt(0.05f);
  FlatAdam flat_opt(0.05f);
  ParamRef refs[] = {p.ref()};
  tensor::Rng rng(5);
  for (int step = 0; step < 20; ++step) {
    std::vector<float> g(3);
    for (auto& v : g) v = static_cast<float>(rng.normal());
    for (int i = 0; i < 3; ++i) p.g[i] = g[i];
    layer_opt.step(refs);
    flat_opt.step(w, g);
    for (int i = 0; i < 3; ++i) EXPECT_NEAR(p.w[i], w[i], 1e-5);
  }
}

TEST(FlatAdam, LengthChangeThrows) {
  FlatAdam opt(0.1f);
  std::vector<float> w(4, 0.0f), g(4, 1.0f);
  opt.step(w, g);
  std::vector<float> w2(5, 0.0f), g2(5, 1.0f);
  EXPECT_THROW(opt.step(w2, g2), CheckError);
}

TEST(FlatAdam, ResetAllowsNewLength) {
  FlatAdam opt(0.1f);
  std::vector<float> w(4, 0.0f), g(4, 1.0f);
  opt.step(w, g);
  opt.reset();
  std::vector<float> w2(5, 0.0f), g2(5, 1.0f);
  EXPECT_NO_THROW(opt.step(w2, g2));
}

TEST(FlatAdam, MismatchedSpansThrow) {
  FlatAdam opt(0.1f);
  std::vector<float> w(4, 0.0f), g(3, 1.0f);
  EXPECT_THROW(opt.step(w, g), CheckError);
}

// Parameterized: SGD with any valid momentum decreases a quadratic.
class SgdMomentumTest : public ::testing::TestWithParam<float> {};

TEST_P(SgdMomentumTest, DecreasesQuadraticLoss) {
  Param p{Tensor({1}, std::vector<float>{5.0f}), Tensor({1})};
  Sgd opt(0.05f, GetParam());
  ParamRef refs[] = {p.ref()};
  auto loss = [&] { return (p.w[0] - 1.0f) * (p.w[0] - 1.0f); };
  const float initial = loss();
  for (int i = 0; i < 100; ++i) {
    p.g[0] = 2.0f * (p.w[0] - 1.0f);
    opt.step(refs);
  }
  EXPECT_LT(loss(), 0.01f * initial);
}

INSTANTIATE_TEST_SUITE_P(Momenta, SgdMomentumTest,
                         ::testing::Values(0.0f, 0.5f, 0.9f));

}  // namespace
}  // namespace adafl::nn
