// The deterministic thread-pool substrate: partitioning, edge cases,
// exception propagation, nesting, and task submission.
#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace adafl::core {
namespace {

/// Restores the automatic pool size when a test that resizes it exits.
struct ThreadGuard {
  ~ThreadGuard() { set_num_threads(0); }
};

TEST(Parallel, NumThreadsIsPositive) { EXPECT_GE(num_threads(), 1); }

TEST(Parallel, SetNumThreadsRoundTrips) {
  ThreadGuard guard;
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
}

TEST(Parallel, EmptyRangeNeverInvokes) {
  ThreadGuard guard;
  set_num_threads(4);
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](std::int64_t) { ++calls; });
  parallel_for(7, 3, [&](std::int64_t) { ++calls; });
  parallel_for_blocked(2, 2, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Parallel, EveryIndexVisitedExactlyOnce) {
  ThreadGuard guard;
  for (int threads : {1, 2, 4, 7}) {
    set_num_threads(threads);
    std::vector<std::atomic<int>> hits(100);
    parallel_for(0, 100, [&](std::int64_t i) {
      ++hits[static_cast<std::size_t>(i)];
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, RangeSmallerThanThreadCount) {
  ThreadGuard guard;
  set_num_threads(8);
  std::vector<std::atomic<int>> hits(3);
  parallel_for(0, 3, [&](std::int64_t i) {
    ++hits[static_cast<std::size_t>(i)];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, BlockedChunksAreContiguousAndDisjoint) {
  ThreadGuard guard;
  set_num_threads(4);
  std::vector<int> owner(64, -1);
  std::atomic<int> next_chunk{0};
  parallel_for_blocked(0, 64, [&](std::int64_t b, std::int64_t e) {
    ASSERT_LT(b, e);
    const int id = next_chunk.fetch_add(1);
    for (std::int64_t i = b; i < e; ++i)
      owner[static_cast<std::size_t>(i)] = id;
  });
  // Every index covered, and each chunk's indices form one contiguous run.
  for (int o : owner) EXPECT_NE(o, -1);
  for (std::size_t i = 1; i < owner.size(); ++i)
    if (owner[i] != owner[i - 1])
      EXPECT_EQ(std::count(owner.begin() + static_cast<std::ptrdiff_t>(i),
                           owner.end(), owner[i - 1]),
                0)
          << "chunk " << owner[i - 1] << " is not contiguous";
}

TEST(Parallel, ExceptionPropagatesToCaller) {
  ThreadGuard guard;
  for (int threads : {1, 4}) {
    set_num_threads(threads);
    EXPECT_THROW(
        parallel_for(0, 32,
                     [](std::int64_t i) {
                       if (i == 17) throw std::runtime_error("boom");
                     }),
        std::runtime_error);
  }
}

TEST(Parallel, SurvivesAndStaysUsableAfterException) {
  ThreadGuard guard;
  set_num_threads(4);
  EXPECT_THROW(parallel_for(0, 8,
                            [](std::int64_t) {
                              throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  std::atomic<int> calls{0};
  parallel_for(0, 8, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

TEST(Parallel, NestedCallsRunFlat) {
  ThreadGuard guard;
  set_num_threads(4);
  std::vector<std::atomic<int>> hits(16 * 16);
  parallel_for(0, 16, [&](std::int64_t i) {
    // Inner region must run serially on this worker (no deadlock, no
    // oversubscription) and still visit everything.
    parallel_for(0, 16, [&](std::int64_t j) {
      ++hits[static_cast<std::size_t>(i * 16 + j)];
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, MapCollectsInIndexOrder) {
  ThreadGuard guard;
  for (int threads : {1, 4}) {
    set_num_threads(threads);
    const auto out = parallel_map<std::int64_t>(
        64, [](std::int64_t i) { return i * i; });
    ASSERT_EQ(out.size(), 64u);
    for (std::int64_t i = 0; i < 64; ++i)
      EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(Parallel, SubmitTaskCompletesAndPropagatesExceptions) {
  ThreadGuard guard;
  for (int threads : {1, 4}) {
    set_num_threads(threads);
    std::atomic<bool> ran{false};
    auto ok = submit_task([&] { ran = true; });
    ok.get();
    EXPECT_TRUE(ran.load());
    auto bad = submit_task([] { throw std::runtime_error("task boom"); });
    EXPECT_THROW(bad.get(), std::runtime_error);
  }
}

TEST(Parallel, ManyConcurrentSubmissionsAllComplete) {
  ThreadGuard guard;
  set_num_threads(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 64; ++i)
    futs.push_back(submit_task([&sum, i] { sum += i; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

}  // namespace
}  // namespace adafl::core
