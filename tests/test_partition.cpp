#include "data/partition.h"

#include <gtest/gtest.h>

#include "tensor/check.h"

#include <algorithm>
#include <set>

namespace adafl::data {
namespace {

using tensor::Rng;

std::vector<std::int32_t> cyclic_labels(std::int64_t n, int classes) {
  std::vector<std::int32_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    labels[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(i % classes);
  return labels;
}

void expect_exact_cover(const Partition& parts, std::int64_t n) {
  std::set<std::int32_t> seen;
  std::size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
    seen.insert(p.begin(), p.end());
  }
  EXPECT_EQ(total, static_cast<std::size_t>(n));
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), static_cast<std::int32_t>(n - 1));
}

TEST(PartitionIid, ExactCoverAndBalance) {
  Rng rng(1);
  auto parts = partition_iid(103, 10, rng);
  ASSERT_EQ(parts.size(), 10u);
  expect_exact_cover(parts, 103);
  for (const auto& p : parts) {
    EXPECT_GE(p.size(), 10u);
    EXPECT_LE(p.size(), 11u);
  }
}

TEST(PartitionIid, FewerExamplesThanClientsThrows) {
  Rng rng(1);
  EXPECT_THROW(partition_iid(3, 10, rng), CheckError);
}

TEST(PartitionIid, DeterministicUnderSeed) {
  Rng a(2), b(2);
  EXPECT_EQ(partition_iid(50, 5, a), partition_iid(50, 5, b));
}

TEST(PartitionShards, ExactCover) {
  Rng rng(3);
  auto labels = cyclic_labels(200, 10);
  auto parts = partition_shards(labels, 10, 2, rng);
  ASSERT_EQ(parts.size(), 10u);
  expect_exact_cover(parts, 200);
}

TEST(PartitionShards, EachClientSeesFewClasses) {
  Rng rng(4);
  auto labels = cyclic_labels(1000, 10);
  auto parts = partition_shards(labels, 10, 2, rng);
  for (const auto& p : parts) {
    std::set<std::int32_t> classes;
    for (auto i : p) classes.insert(labels[static_cast<std::size_t>(i)]);
    // Two shards cover at most 4 label values (shard may straddle a
    // boundary), far fewer than all 10.
    EXPECT_LE(classes.size(), 4u);
  }
}

TEST(PartitionShards, TooFewExamplesThrows) {
  Rng rng(5);
  auto labels = cyclic_labels(10, 2);
  EXPECT_THROW(partition_shards(labels, 10, 2, rng), CheckError);
}

TEST(PartitionDirichlet, ExactCoverNoEmptyClients) {
  Rng rng(6);
  auto labels = cyclic_labels(500, 10);
  auto parts = partition_dirichlet(labels, 10, 0.3, rng);
  ASSERT_EQ(parts.size(), 10u);
  expect_exact_cover(parts, 500);
  for (const auto& p : parts) EXPECT_FALSE(p.empty());
}

TEST(PartitionDirichlet, SmallAlphaIsMoreSkewedThanLarge) {
  auto labels = cyclic_labels(2000, 10);
  auto skew_of = [&](double alpha, std::uint64_t seed) {
    Rng rng(seed);
    auto parts = partition_dirichlet(labels, 10, alpha, rng);
    // Mean over clients of (max class share).
    double total = 0.0;
    for (const auto& p : parts) {
      std::vector<int> counts(10, 0);
      for (auto i : p) counts[static_cast<std::size_t>(
          labels[static_cast<std::size_t>(i)])]++;
      const int mx = *std::max_element(counts.begin(), counts.end());
      total += static_cast<double>(mx) / static_cast<double>(p.size());
    }
    return total / static_cast<double>(parts.size());
  };
  // Average across seeds to damp variance.
  double skew_small = 0.0, skew_large = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    skew_small += skew_of(0.1, 10 + s);
    skew_large += skew_of(10.0, 20 + s);
  }
  EXPECT_GT(skew_small, skew_large);
}

TEST(PartitionDirichlet, InvalidArgsThrow) {
  Rng rng(8);
  auto labels = cyclic_labels(100, 5);
  EXPECT_THROW(partition_dirichlet(labels, 0, 0.5, rng), CheckError);
  EXPECT_THROW(partition_dirichlet(labels, 5, 0.0, rng), CheckError);
}

// Property sweep: all partitioners produce an exact cover for various
// client counts.
class PartitionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionPropertyTest, AllStrategiesCoverExactly) {
  const int clients = GetParam();
  const std::int64_t n = 60 * clients;
  auto labels = cyclic_labels(n, 10);
  Rng rng(static_cast<std::uint64_t>(clients));
  expect_exact_cover(partition_iid(n, clients, rng), n);
  expect_exact_cover(partition_shards(labels, clients, 2, rng), n);
  expect_exact_cover(partition_dirichlet(labels, clients, 0.5, rng), n);
}

INSTANTIATE_TEST_SUITE_P(ClientCounts, PartitionPropertyTest,
                         ::testing::Values(2, 5, 10, 20, 50));

}  // namespace
}  // namespace adafl::data
