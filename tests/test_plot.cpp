#include "metrics/plot.h"

#include <gtest/gtest.h>

#include <sstream>

#include "tensor/check.h"

namespace adafl::metrics {
namespace {

Series ramp() {
  Series s;
  for (int i = 0; i <= 10; ++i) s.add(i, i / 10.0);
  return s;
}

TEST(AsciiChart, RendersCurveAndLegend) {
  AsciiChart chart(32, 8);
  chart.add("ramp", ramp());
  std::ostringstream os;
  chart.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("* = ramp"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);  // axis corner
}

TEST(AsciiChart, MultipleCurvesUseDistinctGlyphs) {
  Series flat;
  flat.add(0, 0.5);
  flat.add(10, 0.5);
  AsciiChart chart(32, 8);
  chart.add("a", ramp()).add("b", flat);
  std::ostringstream os;
  chart.print(os);
  EXPECT_NE(os.str().find("o = b"), std::string::npos);
}

TEST(AsciiChart, RampIsMonotoneInTheGrid) {
  AsciiChart chart(20, 10);
  chart.add("r", ramp());
  std::ostringstream os;
  chart.print(os);
  // Collect (row, col) of each '*': columns must not decrease as rows rise.
  std::istringstream is(os.str());
  std::string line;
  int prev_col = 1 << 30;
  int rows_seen = 0;
  while (std::getline(is, line)) {
    const auto bar = line.find('|');
    if (bar == std::string::npos) break;
    const auto star = line.find('*', bar);
    if (star == std::string::npos) continue;
    const int col = static_cast<int>(star - bar);
    EXPECT_LE(col, prev_col);  // higher y -> later x for an increasing ramp
    prev_col = col;
    ++rows_seen;
  }
  EXPECT_GT(rows_seen, 4);
}

TEST(AsciiChart, FixedYRangeClamps) {
  AsciiChart chart(16, 6);
  chart.y_range(0.0, 1.0);
  Series s;
  s.add(0, 5.0);  // above the range: clamped to the top row
  s.add(1, 5.0);
  chart.add("hot", s);
  std::ostringstream os;
  EXPECT_NO_THROW(chart.print(os));
}

TEST(AsciiChart, Validation) {
  EXPECT_THROW(AsciiChart(2, 2), CheckError);
  AsciiChart chart(16, 6);
  EXPECT_THROW(chart.add("empty", Series{}), CheckError);
  EXPECT_THROW(chart.y_range(1.0, 1.0), CheckError);
  std::ostringstream os;
  EXPECT_THROW(chart.print(os), CheckError);  // nothing to plot
}

TEST(AsciiChart, SinglePointSeries) {
  AsciiChart chart(16, 6);
  Series s;
  s.add(3.0, 0.7);
  chart.add("dot", s);
  std::ostringstream os;
  EXPECT_NO_THROW(chart.print(os));
}

}  // namespace
}  // namespace adafl::metrics
