// Hot-standby replication tests: REPLICATE codec, standby-side validation
// (truncated / bit-flipped / version-skewed / config-skewed images are
// rejected and the previous complete checkpoint survives), atomic install,
// publisher fan-out, and an in-process mid-run failover that must land
// bitwise identical to the clean simulator.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "core/server_checkpoint.h"
#include "deployed_test_util.h"
#include "net/replication/replication.h"
#include "net/transport/crc32.h"
#include "net/transport/loopback.h"

namespace adafl::testutil {
namespace {

using namespace net::transport;
using namespace net::replication;
using std::chrono::milliseconds;

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove((dir + "/server.ckpt").c_str());
  std::remove((dir + "/server.ckpt.tmp").c_str());
  return dir;
}

/// A small but fully populated deployed-style checkpoint.
core::ServerCheckpoint make_ckpt(std::uint32_t next_round,
                                 std::uint32_t total_rounds,
                                 std::uint32_t config_crc) {
  core::ServerCheckpoint ck;
  ck.producer = "deployed";
  ck.next_round = next_round;
  ck.total_rounds = total_rounds;
  ck.seed = 7;
  ck.config_crc = config_crc;
  ck.global = {0.5f, -1.25f, 2.0f, 0.125f};
  core::ServerCheckpoint::AdaFlCoreState a;
  a.g_hat = {0.1f, 0.2f, 0.3f, 0.4f};
  a.selected_updates = 3;
  a.rounds_planned = static_cast<std::int32_t>(total_rounds);
  ck.adafl = a;
  return ck;
}

std::vector<std::uint8_t> image_of(const core::ServerCheckpoint& ck) {
  return core::encode_checkpoint_file_bytes(core::encode_server_checkpoint(ck));
}

Frame replicate_frame(std::vector<std::uint8_t> payload) {
  Frame f;
  f.type = MsgType::kReplicate;
  f.client_id = kServerId;
  f.payload = std::move(payload);
  return f;
}

// --- REPLICATE payload codec. ---------------------------------------------

TEST(ReplicateCodec, RoundTripTruncationAndTrailingBytes) {
  ReplicatePayload p;
  p.next_round = 5;
  p.image = {1, 2, 3, 4, 5, 6, 7};
  const auto enc = encode_replicate(p);
  const ReplicatePayload back = parse_replicate(enc);
  EXPECT_EQ(back.next_round, 5u);
  EXPECT_EQ(back.image, p.image);

  auto truncated = enc;
  truncated.resize(enc.size() - 3);
  EXPECT_THROW(parse_replicate(truncated), CheckError);

  auto trailing = enc;
  trailing.push_back(0xFF);
  EXPECT_THROW(parse_replicate(trailing), CheckError);
}

// --- Standby validation + fallback (ISSUE 8 satellite 4). -----------------

TEST(StandbyReplica, RejectsCorruptImagesAndKeepsPreviousCheckpoint) {
  const std::string dir = fresh_dir("standby_reject");
  constexpr std::uint32_t kCfgCrc = 0xABCD1234u;

  // Pre-queue the whole scripted conversation, then run the replica
  // synchronously: loopback delivers in order, kShutdown ends the run.
  auto pair = make_loopback_pair();
  std::unique_ptr<Transport> primary = std::move(pair.first);
  std::unique_ptr<Transport> standby_end = std::move(pair.second);

  const auto good = image_of(make_ckpt(2, 6, kCfgCrc));
  {
    ReplicatePayload p{2, good};
    ASSERT_TRUE(primary->send(replicate_frame(encode_replicate(p))));
  }
  {  // Truncated REPLICATE payload.
    ReplicatePayload p{3, image_of(make_ckpt(3, 6, kCfgCrc))};
    auto enc = encode_replicate(p);
    enc.resize(enc.size() / 2);
    ASSERT_TRUE(primary->send(replicate_frame(std::move(enc))));
  }
  {  // Bit-flipped image: the whole-file CRC must catch it.
    ReplicatePayload p{3, image_of(make_ckpt(3, 6, kCfgCrc))};
    p.image[p.image.size() / 2] ^= 0x01;
    ASSERT_TRUE(primary->send(replicate_frame(encode_replicate(p))));
  }
  {  // Version skew with a *recomputed* file CRC: the version check itself
     // must reject, not just the checksum.
    ReplicatePayload p{3, image_of(make_ckpt(3, 6, kCfgCrc))};
    p.image[4] ^= 0x03;  // version u32 little-endian low byte: 2 -> 1
    const std::uint32_t crc = crc32(std::span<const std::uint8_t>(
        p.image.data(), p.image.size() - 4));
    for (int i = 0; i < 4; ++i)
      p.image[p.image.size() - 4 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(crc >> (8 * i));
    ASSERT_TRUE(primary->send(replicate_frame(encode_replicate(p))));
  }
  {  // Envelope/meta round disagreement.
    ReplicatePayload p{9, image_of(make_ckpt(3, 6, kCfgCrc))};
    ASSERT_TRUE(primary->send(replicate_frame(encode_replicate(p))));
  }
  {  // Config skew: a primary running a different configuration.
    ReplicatePayload p{3, image_of(make_ckpt(3, 6, kCfgCrc ^ 0xFFu))};
    ASSERT_TRUE(primary->send(replicate_frame(encode_replicate(p))));
  }
  {
    Frame f;
    f.type = MsgType::kShutdown;
    f.client_id = kServerId;
    ASSERT_TRUE(primary->send(f));
  }

  StandbyConfig scfg;
  scfg.checkpoint_dir = dir;
  scfg.lease = milliseconds(5000);
  scfg.recv_poll = milliseconds(5);
  scfg.expected_config_crc = kCfgCrc;
  bool dialed = false;
  StandbyReplica replica(scfg, [&]() -> std::unique_ptr<Transport> {
    if (dialed) return nullptr;
    dialed = true;
    return std::move(standby_end);
  });

  EXPECT_EQ(replica.run(), StandbyOutcome::kStandDown);
  EXPECT_EQ(replica.checkpoints_received(), 1u);
  EXPECT_EQ(replica.rejected_payloads(), 5u);
  EXPECT_EQ(replica.last_next_round(), 2u);

  // The first (valid) checkpoint survived every later corrupt payload...
  const auto ck = core::load_server_checkpoint(core::checkpoint_path(dir));
  EXPECT_EQ(ck.next_round, 2u);
  EXPECT_EQ(ck.config_crc, kCfgCrc);
  // ...and the install was atomic: no torn tmp file left behind.
  EXPECT_FALSE(std::filesystem::exists(core::checkpoint_path(dir) + ".tmp"));
}

TEST(StandbyReplica, PartialCheckpointFileCannotBeResumedFrom) {
  // What a NON-atomic installer would leave after a mid-write crash. The
  // loader must refuse it outright — promotion from a torn file is
  // structurally impossible, which is why install() goes through
  // write_checkpoint_bytes_atomic (tmp + rename) only after full validation.
  const std::string dir = fresh_dir("standby_partial");
  const auto img = image_of(make_ckpt(2, 6, 0));
  const std::string path = core::checkpoint_path(dir);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(img.data()),
            static_cast<std::streamsize>(img.size() / 2));
  out.close();
  EXPECT_THROW(core::load_server_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

// --- Lease behavior. ------------------------------------------------------

TEST(StandbyReplica, PromotesWhenThePrimaryIsSilent) {
  StandbyConfig scfg;
  scfg.checkpoint_dir = fresh_dir("standby_silent");
  scfg.lease = milliseconds(250);
  scfg.recv_poll = milliseconds(10);
  auto pair = make_loopback_pair();  // a peer that never says anything
  std::unique_ptr<Transport> standby_end = std::move(pair.second);
  StandbyReplica replica(scfg, [&]() -> std::unique_ptr<Transport> {
    return std::move(standby_end);
  });
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(replica.run(), StandbyOutcome::kPromote);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, milliseconds(240));
  EXPECT_EQ(replica.checkpoints_received(), 0u);
}

TEST(StandbyReplica, PromotesWhenThePrimaryIsUnreachable) {
  StandbyConfig scfg;
  scfg.checkpoint_dir = fresh_dir("standby_unreachable");
  scfg.lease = milliseconds(250);
  scfg.recv_poll = milliseconds(10);
  StandbyReplica replica(scfg,
                         []() -> std::unique_ptr<Transport> { return nullptr; });
  EXPECT_EQ(replica.run(), StandbyOutcome::kPromote);
}

// --- Publisher. -----------------------------------------------------------

TEST(CheckpointPublisher, SeedsLateAttachersAndAnswersPings) {
  CheckpointPublisher pub;
  const auto img = image_of(make_ckpt(3, 6, 0));
  pub.publish(3, img, 0.5);  // nobody attached yet
  EXPECT_EQ(pub.checkpoints_replicated(), 0u);

  // A standby attaching after the publish is seeded immediately.
  auto pair = make_loopback_pair();
  std::unique_ptr<Transport> standby_end = std::move(pair.second);
  pub.adopt(std::move(pair.first));
  EXPECT_EQ(pub.standby_count(), 1u);
  EXPECT_EQ(pub.checkpoints_replicated(), 1u);
  auto f = standby_end->recv(milliseconds(100));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, MsgType::kReplicate);
  const ReplicatePayload p = parse_replicate(f->payload);
  EXPECT_EQ(p.next_round, 3u);
  EXPECT_EQ(p.image, img);

  // PING from the standby renews its lease via a PONG.
  Frame ping;
  ping.type = MsgType::kPing;
  ping.client_id = kServerId;
  ASSERT_TRUE(standby_end->send(ping));
  pub.service();
  auto pong = standby_end->recv(milliseconds(100));
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, MsgType::kPong);

  // A later publish reaches the attached standby.
  pub.publish(4, image_of(make_ckpt(4, 6, 0)), 1.0);
  EXPECT_EQ(pub.checkpoints_replicated(), 2u);
  auto f2 = standby_end->recv(milliseconds(100));
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(parse_replicate(f2->payload).next_round, 4u);

  // Graceful end of run: SHUTDOWN, not silence.
  pub.shutdown_standbys();
  EXPECT_EQ(pub.standby_count(), 0u);
  auto bye = standby_end->recv(milliseconds(100));
  ASSERT_TRUE(bye.has_value());
  EXPECT_EQ(bye->type, MsgType::kShutdown);
}

// --- End-to-end failover, bitwise (ISSUE 8 tentpole). ---------------------

TEST(Failover, PromotedStandbyFinishesTheRunBitwise) {
  const cli::TaskSpec spec = small_task_spec();
  const fl::ClientTrainConfig client = small_client_config();
  const core::AdaFlParams params = small_params();
  const int rounds = 4;
  const SimResult sim = run_simulator(spec, client, params, rounds);

  const std::string dir_a = fresh_dir("failover_primary");
  const std::string dir_b = fresh_dir("failover_standby");
  auto task = cli::build_task(spec);

  ServerSessionConfig scfg = make_server_config(spec, client, params, rounds);
  scfg.retransmit_nudge = milliseconds(150);
  scfg.checkpoint_dir = dir_a;
  scfg.checkpoint_every = 1;
  CheckpointPublisher pub;
  scfg.publisher = &pub;
  ServerSession server1(scfg, task.factory, &task.test);

  // Endpoint table: slot 0 = primary, slot 1 = the promoted standby (null
  // until promotion — a dial then fails fast, like a TCP connect to an
  // unbound port, and the client rotates on).
  std::mutex mu;
  ServerSession* eps[2] = {&server1, nullptr};
  auto dial_ep = [&](std::size_t ep) -> std::unique_ptr<Transport> {
    std::lock_guard<std::mutex> lock(mu);
    if (eps[ep] == nullptr) return nullptr;
    auto pair = make_loopback_pair();
    eps[ep]->add_transport(std::move(pair.first));
    return std::move(pair.second);
  };

  // The standby tails the primary through the same endpoint table.
  StandbyConfig stcfg;
  stcfg.checkpoint_dir = dir_b;
  stcfg.lease = milliseconds(700);
  stcfg.recv_poll = milliseconds(10);
  StandbyReplica replica(stcfg, [&]() -> std::unique_ptr<Transport> {
    return dial_ep(0);
  });
  StandbyOutcome outcome{};
  std::thread standby_thread([&] { outcome = replica.run(); });

  // Client 0's first connection drops the round-3 MODEL and SIGKILLs the
  // primary: no stop-time checkpoint, endpoint 0 goes dark at once.
  auto killed = std::make_shared<std::atomic<bool>>(false);
  const int n = spec.clients;
  std::vector<std::optional<cli::TaskBundle>> bundles(
      static_cast<std::size_t>(n));
  std::vector<ClientRunStats> stats(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      ClientSessionConfig ccfg = test_client_config(id);
      ccfg.backoff.initial = milliseconds(1);
      ccfg.backoff.max = milliseconds(30);
      ccfg.backoff.max_attempts = 0;  // rotate endpoints forever
      ClientSession cs(
          ccfg,
          [&, id](std::size_t ep) -> std::unique_ptr<Transport> {
            auto t = dial_ep(ep);
            if (!t || id != 0 || killed->load()) return t;
            FaultPlan plan;
            plan.sever_on_recv(MsgType::kModel, 3);
            auto ft = std::make_unique<FaultyTransport>(std::move(t),
                                                        std::move(plan));
            ft->set_on_fault([&, killed](const FaultRule&, const Frame&) {
              killed->store(true);
              {
                std::lock_guard<std::mutex> lock(mu);
                eps[0] = nullptr;
              }
              server1.request_stop(/*write_checkpoint=*/false);
            });
            return ft;
          },
          /*endpoint_count=*/2,
          make_bootstrap(&bundles[static_cast<std::size_t>(id)]));
      stats[static_cast<std::size_t>(id)] = cs.run();
    });
  }

  const fl::TrainLog log1 = server1.run();
  EXPECT_TRUE(log1.interrupted);

  // The lease expires against the dead primary; the standby promotes and a
  // replacement session resumes from ITS OWN replicated checkpoint dir.
  standby_thread.join();
  ASSERT_EQ(outcome, StandbyOutcome::kPromote);
  ASSERT_GE(replica.checkpoints_received(), 1u);
  ASSERT_GE(replica.last_next_round(), 2u);

  ServerSessionConfig scfg2 = scfg;
  scfg2.publisher = nullptr;
  scfg2.checkpoint_dir = dir_b;
  scfg2.resume = true;
  ServerSession server2(scfg2, task.factory, &task.test);
  {
    std::lock_guard<std::mutex> lock(mu);
    eps[1] = &server2;
  }
  const fl::TrainLog log2 = server2.run();
  for (auto& t : threads) t.join();

  EXPECT_FALSE(log2.interrupted);
  EXPECT_GE(server2.resumed_from(), 2);
  EXPECT_LE(server2.resumed_from(), rounds);
  // Bitwise: the failover stitches into exactly the clean simulator run —
  // rejoin dedup means nothing is double-counted, replay is identical.
  EXPECT_EQ(server2.global(), sim.global);
  for (const auto& st : stats) {
    EXPECT_TRUE(st.completed);
    EXPECT_GE(st.endpoint_rotations, 1);
  }
}

}  // namespace
}  // namespace adafl::testutil
