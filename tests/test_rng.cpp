#include "tensor/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace adafl::tensor {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(3);
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithMeanStddev) {
  Rng r(13);
  double sum = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(17);
  int hits = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, UniformIndexInRange) {
  Rng r(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto k = r.uniform_index(10);
    ASSERT_LT(k, 10u);
    ++counts[static_cast<std::size_t>(k)];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, GammaPositiveAndMeanAlpha) {
  Rng r(29);
  for (double alpha : {0.3, 1.0, 2.5}) {
    double sum = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
      const double g = r.gamma(alpha);
      ASSERT_GT(g, 0.0);
      sum += g;
    }
    EXPECT_NEAR(sum / n, alpha, 0.1 * alpha + 0.03);
  }
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng root(31);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, KnownProgressionIsDeterministic) {
  SplitMix64 a(0), b(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace adafl::tensor
