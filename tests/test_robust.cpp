// Robust aggregation + Byzantine fault injection (the "resilient" extension
// of the sync trainer).
#include <gtest/gtest.h>

#include "fl/sync_trainer.h"
#include "fl_fixtures.h"

namespace adafl::fl {
namespace {

using testing::make_mini_task;

SyncConfig robust_config(Aggregation agg, double byzantine_fraction,
                         int rounds = 15) {
  SyncConfig cfg;
  cfg.algo = Algorithm::kFedAvg;
  cfg.rounds = rounds;
  cfg.participation = 1.0;
  cfg.aggregation = agg;
  cfg.seed = 3;
  if (byzantine_fraction > 0.0) {
    cfg.faults.kind = FaultKind::kByzantine;
    cfg.faults.unreliable_fraction = byzantine_fraction;
  }
  return cfg;
}

double run_acc(const testing::MiniTask& task, const SyncConfig& base) {
  SyncConfig cfg = base;
  cfg.client = task.client;
  SyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  return t.run().final_accuracy();
}

TEST(RobustAggregation, CleanRunsMatchAcrossRules) {
  auto task = make_mini_task(5);
  const double mean = run_acc(task, robust_config(Aggregation::kWeightedMean, 0.0));
  const double trimmed =
      run_acc(task, robust_config(Aggregation::kTrimmedMean, 0.0));
  const double median =
      run_acc(task, robust_config(Aggregation::kCoordinateMedian, 0.0));
  // Without attackers all three rules learn the IID task.
  EXPECT_GT(mean, 0.5);
  EXPECT_GT(trimmed, 0.5);
  EXPECT_GT(median, 0.5);
}

TEST(RobustAggregation, ByzantineBreaksMeanButNotMedian) {
  auto task = make_mini_task(5);
  // One of five clients sign-flips with 3x amplification.
  const double mean =
      run_acc(task, robust_config(Aggregation::kWeightedMean, 0.2));
  const double median =
      run_acc(task, robust_config(Aggregation::kCoordinateMedian, 0.2));
  EXPECT_GT(median, 0.5);
  EXPECT_GT(median, mean + 0.1);  // robust rule clearly wins under attack
}

TEST(RobustAggregation, TrimmedMeanSurvivesAttack) {
  auto task = make_mini_task(5);
  SyncConfig cfg = robust_config(Aggregation::kTrimmedMean, 0.2);
  cfg.trim_fraction = 0.2;  // drops exactly the one attacker per side
  const double trimmed = run_acc(task, cfg);
  EXPECT_GT(trimmed, 0.5);
}

TEST(RobustAggregation, OverTrimmingFallsBackToMedianElement) {
  auto task = make_mini_task(4);
  SyncConfig cfg = robust_config(Aggregation::kTrimmedMean, 0.0, 5);
  cfg.trim_fraction = 0.5;  // trims everything -> median-element fallback
  EXPECT_NO_THROW(run_acc(task, cfg));
}

TEST(RobustAggregation, MedianWorksWithEvenClientCount) {
  auto task = make_mini_task(4);
  const double acc =
      run_acc(task, robust_config(Aggregation::kCoordinateMedian, 0.0));
  EXPECT_GT(acc, 0.4);
}

}  // namespace
}  // namespace adafl::fl
