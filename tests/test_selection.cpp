#include "core/selection.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tensor/check.h"
#include "tensor/rng.h"

namespace adafl::core {
namespace {

TEST(SelectClients, FiltersByThreshold) {
  std::vector<double> scores{0.9, 0.2, 0.7, 0.4};
  auto r = select_clients(scores, 10, 0.5);
  EXPECT_EQ(r.selected, (std::vector<int>{0, 2}));
  EXPECT_EQ(r.below_threshold, (std::vector<int>{1, 3}));
}

TEST(SelectClients, CapsAtK) {
  std::vector<double> scores{0.9, 0.8, 0.7, 0.6, 0.5};
  auto r = select_clients(scores, 3, 0.0);
  EXPECT_EQ(r.selected, (std::vector<int>{0, 1, 2}));
}

TEST(SelectClients, RanksDescending) {
  std::vector<double> scores{0.1, 0.9, 0.5, 0.7};
  auto r = select_clients(scores, 4, 0.0);
  EXPECT_EQ(r.selected, (std::vector<int>{1, 3, 2, 0}));
}

TEST(SelectClients, StableOnTies) {
  std::vector<double> scores{0.5, 0.5, 0.5};
  auto r = select_clients(scores, 2, 0.0);
  EXPECT_EQ(r.selected, (std::vector<int>{0, 1}));
}

TEST(SelectClients, EmptyWhenAllBelowTau) {
  std::vector<double> scores{0.1, 0.2};
  auto r = select_clients(scores, 5, 0.9);
  EXPECT_TRUE(r.selected.empty());
  EXPECT_EQ(r.below_threshold.size(), 2u);
}

TEST(SelectClients, ThresholdIsInclusive) {
  std::vector<double> scores{0.5};
  auto r = select_clients(scores, 1, 0.5);
  EXPECT_EQ(r.selected.size(), 1u);
}

TEST(SelectClients, InvalidArgsThrow) {
  std::vector<double> scores{0.5};
  EXPECT_THROW(select_clients(scores, 0, 0.5), CheckError);
  EXPECT_THROW(select_clients(scores, 1, 1.5), CheckError);
  std::vector<double> bad{1.5};
  EXPECT_THROW(select_clients(bad, 1, 0.5), CheckError);
}

TEST(NormalizeSelected, MapsToUnitInterval) {
  std::vector<double> scores{0.2, 0.8, 0.5, 0.9};
  std::vector<int> ids{0, 1, 2};
  auto n = normalize_selected(scores, ids);
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 1.0);
  EXPECT_NEAR(n[2], 0.5, 1e-9);
}

TEST(NormalizeSelected, SingletonAndEqualScoresMapToOne) {
  std::vector<double> scores{0.3, 0.3};
  EXPECT_EQ(normalize_selected(scores, {0}), (std::vector<double>{1.0}));
  EXPECT_EQ(normalize_selected(scores, {0, 1}),
            (std::vector<double>{1.0, 1.0}));
}

// Property test over Algorithm 1's stated constraints, across random score
// vectors and (K, tau) combinations.
struct Algo1Case {
  int n;
  int k;
  double tau;
  std::uint64_t seed;
};

class Algorithm1Property : public ::testing::TestWithParam<Algo1Case> {};

TEST_P(Algorithm1Property, ConstraintsHold) {
  const auto p = GetParam();
  tensor::Rng rng(p.seed);
  std::vector<double> scores(static_cast<std::size_t>(p.n));
  for (auto& s : scores) s = rng.uniform();
  auto r = select_clients(scores, p.k, p.tau);

  // |C_selected| <= K.
  EXPECT_LE(static_cast<int>(r.selected.size()), p.k);
  // forall i in selected: S_i >= tau.
  for (int i : r.selected)
    EXPECT_GE(scores[static_cast<std::size_t>(i)], p.tau);
  // Selected dominates all filtered-but-unselected clients.
  double min_selected = 1.0;
  for (int i : r.selected)
    min_selected = std::min(min_selected, scores[static_cast<std::size_t>(i)]);
  std::vector<bool> in_selected(static_cast<std::size_t>(p.n), false);
  for (int i : r.selected) in_selected[static_cast<std::size_t>(i)] = true;
  for (int i = 0; i < p.n; ++i) {
    if (in_selected[static_cast<std::size_t>(i)]) continue;
    if (scores[static_cast<std::size_t>(i)] >= p.tau && !r.selected.empty())
      EXPECT_LE(scores[static_cast<std::size_t>(i)], min_selected + 1e-12);
  }
  // Selected + below_threshold partition is consistent.
  for (int i : r.below_threshold)
    EXPECT_LT(scores[static_cast<std::size_t>(i)], p.tau);
  // Output is sorted descending.
  for (std::size_t j = 1; j < r.selected.size(); ++j)
    EXPECT_GE(scores[static_cast<std::size_t>(r.selected[j - 1])],
              scores[static_cast<std::size_t>(r.selected[j])]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Algorithm1Property,
    ::testing::Values(Algo1Case{10, 5, 0.5, 1}, Algo1Case{10, 1, 0.0, 2},
                      Algo1Case{10, 10, 0.9, 3}, Algo1Case{50, 7, 0.3, 4},
                      Algo1Case{100, 20, 0.6, 5}, Algo1Case{3, 5, 0.2, 6},
                      Algo1Case{1, 1, 0.99, 7}, Algo1Case{25, 12, 0.45, 8}));

}  // namespace
}  // namespace adafl::core
