// Format-level tests for the durable server checkpoint (v2 "ADFL" sections):
// round-trip fidelity, atomic writes, and rejection of torn / corrupted /
// malformed files with actionable errors instead of a resume-from-garbage.
#include "core/server_checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <vector>

#include "tensor/check.h"

namespace adafl::core {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A checkpoint exercising every section, including the optional ones.
ServerCheckpoint full_checkpoint() {
  ServerCheckpoint ck;
  ck.producer = "adafl-sync";
  ck.next_round = 7;
  ck.total_rounds = 12;
  ck.seed = 0xDEADBEEF;
  ck.config_crc = 0x1234;
  ck.clock = 3.5;
  ck.global = {1.0f, -2.0f, 0.5f, 4.0f};

  ServerCheckpoint::AdaFlCoreState a;
  a.g_hat = {0.1f, 0.2f, 0.3f, 0.4f};
  a.selected_updates = 11;
  a.skipped_clients = 3;
  a.min_ratio_used = 0.05;
  a.max_ratio_used = 0.4;
  a.mean_selected_per_round = 1.8;
  a.selected_sum = 9;
  a.rounds_planned = 5;
  ck.adafl = a;

  ServerCheckpoint::AdamState adam;
  adam.m = {0.01f, 0.02f, 0.03f, 0.04f};
  adam.v = {0.1f, 0.1f, 0.1f, 0.1f};
  adam.t = 6;
  ck.adam = adam;

  ck.c_global = std::vector<float>{0.5f, 0.5f, 0.5f, 0.5f};

  tensor::Rng rng(42);
  (void)rng.normal();  // advance so the state is non-initial
  ck.server_rng = rng.state();
  tensor::Rng link(43);
  ck.link_rngs = {link.state()};
  ck.schedule = {2, 0, 1};

  ServerCheckpoint::ClientState c0;
  c0.loader_rng = tensor::Rng(44).state();
  c0.loader_cursor = 2;
  c0.loader_indices = {3, 1, 0, 2};
  c0.dgc_u = {0.0f, 0.1f, 0.0f, 0.0f};
  c0.dgc_v = {0.0f, 0.0f, 0.2f, 0.0f};
  c0.c_local = {0.1f, 0.1f, 0.1f, 0.1f};
  ck.clients = {c0};
  return ck;
}

TEST(ServerCheckpoint, RoundTripPreservesEveryField) {
  const std::string path = temp_path("srv_ckpt_rt.bin");
  const ServerCheckpoint ck = full_checkpoint();
  save_server_checkpoint(path, ck);
  const ServerCheckpoint got = load_server_checkpoint(path);

  EXPECT_EQ(got.producer, ck.producer);
  EXPECT_EQ(got.next_round, ck.next_round);
  EXPECT_EQ(got.total_rounds, ck.total_rounds);
  EXPECT_EQ(got.seed, ck.seed);
  EXPECT_EQ(got.config_crc, ck.config_crc);
  EXPECT_EQ(got.clock, ck.clock);
  EXPECT_EQ(got.global, ck.global);
  ASSERT_TRUE(got.adafl.has_value());
  EXPECT_EQ(got.adafl->g_hat, ck.adafl->g_hat);
  EXPECT_EQ(got.adafl->selected_updates, ck.adafl->selected_updates);
  EXPECT_EQ(got.adafl->skipped_clients, ck.adafl->skipped_clients);
  EXPECT_EQ(got.adafl->min_ratio_used, ck.adafl->min_ratio_used);
  EXPECT_EQ(got.adafl->max_ratio_used, ck.adafl->max_ratio_used);
  EXPECT_EQ(got.adafl->mean_selected_per_round,
            ck.adafl->mean_selected_per_round);
  EXPECT_EQ(got.adafl->selected_sum, ck.adafl->selected_sum);
  EXPECT_EQ(got.adafl->rounds_planned, ck.adafl->rounds_planned);
  ASSERT_TRUE(got.adam.has_value());
  EXPECT_EQ(got.adam->m, ck.adam->m);
  EXPECT_EQ(got.adam->v, ck.adam->v);
  EXPECT_EQ(got.adam->t, ck.adam->t);
  ASSERT_TRUE(got.c_global.has_value());
  EXPECT_EQ(*got.c_global, *ck.c_global);
  ASSERT_TRUE(got.server_rng.has_value());
  // A restored RNG continues the stream bitwise.
  tensor::Rng a(1), b(1);
  a.set_state(*ck.server_rng);
  b.set_state(*got.server_rng);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.normal(), b.normal());
  ASSERT_EQ(got.link_rngs.size(), 1u);
  EXPECT_EQ(got.schedule, ck.schedule);
  ASSERT_EQ(got.clients.size(), 1u);
  EXPECT_EQ(got.clients[0].loader_cursor, ck.clients[0].loader_cursor);
  EXPECT_EQ(got.clients[0].loader_indices, ck.clients[0].loader_indices);
  EXPECT_EQ(got.clients[0].dgc_u, ck.clients[0].dgc_u);
  EXPECT_EQ(got.clients[0].dgc_v, ck.clients[0].dgc_v);
  EXPECT_EQ(got.clients[0].c_local, ck.clients[0].c_local);
  std::remove(path.c_str());
}

TEST(ServerCheckpoint, RoundTripWithoutOptionalSections) {
  const std::string path = temp_path("srv_ckpt_min.bin");
  ServerCheckpoint ck;
  ck.producer = "deployed";
  ck.next_round = 2;
  ck.total_rounds = 3;
  ck.global = {1.0f, 2.0f};
  ServerCheckpoint::AdaFlCoreState a;
  a.g_hat = {0.0f, 0.0f};
  ck.adafl = a;
  save_server_checkpoint(path, ck);
  const ServerCheckpoint got = load_server_checkpoint(path);
  EXPECT_EQ(got.producer, "deployed");
  EXPECT_FALSE(got.adam.has_value());
  EXPECT_FALSE(got.c_global.has_value());
  EXPECT_FALSE(got.server_rng.has_value());
  EXPECT_TRUE(got.clients.empty());
  std::remove(path.c_str());
}

TEST(ServerCheckpoint, AtomicWriteLeavesNoTmpFile) {
  const std::string path = temp_path("srv_ckpt_atomic.bin");
  save_server_checkpoint(path, full_checkpoint());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  // Overwrite in place: still no residue, file still loads.
  save_server_checkpoint(path, full_checkpoint());
  std::ifstream tmp2(path + ".tmp");
  EXPECT_FALSE(tmp2.good());
  EXPECT_NO_THROW(load_server_checkpoint(path));
  std::remove(path.c_str());
}

TEST(ServerCheckpoint, TruncationAtAnyPrefixRejected) {
  const std::string path = temp_path("srv_ckpt_trunc.bin");
  save_server_checkpoint(path, full_checkpoint());
  const std::vector<char> bytes = slurp(path);
  ASSERT_GT(bytes.size(), 16u);
  // Cut inside the header, a section, and the CRC trailer.
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{9}, bytes.size() / 3, bytes.size() / 2,
        bytes.size() - 2}) {
    std::vector<char> cut(bytes.begin(),
                          bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    spit(path, cut);
    EXPECT_THROW(load_server_checkpoint(path), std::runtime_error)
        << "prefix of " << keep << " bytes was accepted";
  }
  std::remove(path.c_str());
}

TEST(ServerCheckpoint, FlippedByteAnywhereRejected) {
  const std::string path = temp_path("srv_ckpt_flip.bin");
  save_server_checkpoint(path, full_checkpoint());
  const std::vector<char> bytes = slurp(path);
  // Flip a byte in a section body and the final file-CRC byte: the
  // whole-file CRC catches both before any section is parsed.
  for (const std::size_t pos : {bytes.size() / 2, bytes.size() - 1}) {
    std::vector<char> bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0xFF);
    spit(path, bad);
    EXPECT_THROW(load_server_checkpoint(path), std::runtime_error)
        << "flip at byte " << pos << " was accepted";
  }
  std::remove(path.c_str());
}

TEST(ServerCheckpoint, TrailingBytesRejected) {
  const std::string path = temp_path("srv_ckpt_trail.bin");
  save_server_checkpoint(path, full_checkpoint());
  std::vector<char> bytes = slurp(path);
  bytes.push_back('x');
  spit(path, bytes);
  EXPECT_THROW(load_server_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ServerCheckpoint, WrongSectionCountRejected) {
  const std::string path = temp_path("srv_ckpt_sections.bin");
  auto sections = encode_server_checkpoint(full_checkpoint());
  sections.pop_back();  // drop "clients"
  write_checkpoint_file(path, sections);
  // The container itself is valid (CRCs match), so the low-level reader
  // accepts it; the typed decoder rejects the structure.
  EXPECT_NO_THROW(read_checkpoint_file(path));
  EXPECT_THROW(load_server_checkpoint(path), std::runtime_error);
  EXPECT_THROW(decode_server_checkpoint(sections), CheckError);
  std::remove(path.c_str());
}

TEST(ServerCheckpoint, NonFiniteWeightsRejected) {
  const std::string path = temp_path("srv_ckpt_nan.bin");
  ServerCheckpoint ck = full_checkpoint();
  ck.global[1] = std::numeric_limits<float>::quiet_NaN();
  save_server_checkpoint(path, ck);
  EXPECT_THROW(load_server_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ServerCheckpoint, MissingFileHasActionableError) {
  try {
    load_server_checkpoint("/nonexistent/dir/server.ckpt");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dir/server.ckpt"),
              std::string::npos);
  }
}

TEST(ServerCheckpoint, CheckpointPathJoinsDir) {
  EXPECT_EQ(checkpoint_path("/tmp/run1"), "/tmp/run1/server.ckpt");
}

}  // namespace
}  // namespace adafl::core
