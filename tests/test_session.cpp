// Deployed FL session protocol: payload codecs, TCP end-to-end equivalence
// with the simulator, and resilience (crashed client degrades the round via
// quorum instead of hanging the server, then rejoins).
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "compress/bytes.h"
#include "compress/dgc.h"
#include "metrics/registry.h"
#include "net/transport/loopback.h"
#include "net/transport/session.h"
#include "tensor/check.h"

#include "deployed_test_util.h"

namespace adafl::net::transport {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// --- Payload codec round-trips. ------------------------------------------

TEST(SessionCodec, HelloRoundTrip) {
  EXPECT_EQ(parse_hello(encode_hello(kProtocolVersion)), kProtocolVersion);
  EXPECT_THROW(parse_hello({}), CheckError);
}

TEST(SessionCodec, WelcomeRoundTripCarriesParamsExactly) {
  WelcomeInfo w;
  w.rounds = 12;
  w.param_count = 50890;
  w.params.tau = 0.4375;
  w.params.max_selected = 3;
  w.params.compression.ratio_min = 6.5;
  w.params.compression.ratio_max = 123.25;
  w.params.compression.warmup_rounds = 2;
  w.params.dgc.momentum = 0.125f;
  w.params.dgc.clip_norm = 2.5;
  w.params.server_trust_clip = false;
  w.config = {{"dataset", "mnist"}, {"seed", "7"}, {"lr", "0.05"}};
  const WelcomeInfo g = parse_welcome(encode_welcome(w));
  EXPECT_EQ(g.rounds, w.rounds);
  EXPECT_EQ(g.param_count, w.param_count);
  EXPECT_EQ(g.params.tau, w.params.tau);
  EXPECT_EQ(g.params.max_selected, w.params.max_selected);
  EXPECT_EQ(g.params.compression.ratio_min, w.params.compression.ratio_min);
  EXPECT_EQ(g.params.compression.ratio_max, w.params.compression.ratio_max);
  EXPECT_EQ(g.params.compression.warmup_rounds,
            w.params.compression.warmup_rounds);
  EXPECT_EQ(g.params.dgc.momentum, w.params.dgc.momentum);
  EXPECT_EQ(g.params.dgc.clip_norm, w.params.dgc.clip_norm);
  EXPECT_EQ(g.params.server_trust_clip, w.params.server_trust_clip);
  EXPECT_EQ(g.config, w.config);
}

TEST(SessionCodec, ModelRoundTripIsBitwise) {
  ModelPayload m;
  m.global = {1.0f, -2.5f, 3.25e-7f, 0.0f};
  m.g_hat = {0.5f, 0.0f, -1.0f, 42.0f};
  const ModelPayload g = parse_model(encode_model(m));
  EXPECT_EQ(g.global, m.global);
  EXPECT_EQ(g.g_hat, m.g_hat);
}

TEST(SessionCodec, UpdateRoundTripAndValidation) {
  compress::DgcCompressor comp(64, core::AdaFlParams{}.dgc);
  std::vector<float> delta(64);
  for (std::size_t i = 0; i < delta.size(); ++i)
    delta[i] = static_cast<float>(i) * 0.25f - 8.0f;
  UpdatePayload u;
  u.msg = comp.compress(delta, 8.0);
  u.num_examples = 120;
  u.mean_loss = 1.5f;
  u.raw_delta_norm = 3.75;
  const UpdatePayload g = parse_update(encode_update(u));
  EXPECT_EQ(g.num_examples, u.num_examples);
  EXPECT_EQ(g.mean_loss, u.mean_loss);
  EXPECT_EQ(g.raw_delta_norm, u.raw_delta_norm);
  EXPECT_EQ(g.msg.decode(), u.msg.decode());

  // Zero examples is a protocol violation (would divide the aggregate).
  UpdatePayload bad = u;
  bad.num_examples = 0;
  EXPECT_THROW(parse_update(encode_update(bad)), CheckError);
  // Truncated wire payload is rejected.
  auto bytes = encode_update(u);
  bytes.pop_back();
  EXPECT_THROW(parse_update(bytes), CheckError);
}

TEST(SessionCodec, ModelRejectsForgedHugeDimension) {
  // (2^61 + 1) * 8 wraps to 8 modulo 2^64, so without an explicit bound on
  // d this 16-byte payload passes the size check and resize(2^61 + 1)
  // throws bad_alloc/length_error — which the malformed-stream recovery
  // paths do not catch. It must be a CheckError instead.
  std::vector<std::uint8_t> p;
  bytes::put_u64(p, (1ull << 61) + 1);
  bytes::put_f64(p, 0.0);
  EXPECT_THROW(parse_model(p), CheckError);
}

// --- End-to-end over real TCP. -------------------------------------------

TEST(Session, TcpDeployedMatchesSimulatorBitwise) {
  // flserver/flclient in-process: ServerSession + 4 ClientSessions over
  // 127.0.0.1 sockets must land on exactly the simulator's weights.
  const auto spec = testutil::small_task_spec();
  const auto client = testutil::small_client_config();
  const auto params = testutil::small_params();
  const int rounds = 3;

  const auto sim = testutil::run_simulator(spec, client, params, rounds);
  const auto dep = testutil::run_deployed_tcp(spec, client, params, rounds);

  ASSERT_EQ(dep.global.size(), sim.global.size());
  EXPECT_EQ(dep.global, sim.global);  // bitwise
  ASSERT_EQ(dep.log.records.size(), sim.log.records.size());
  for (std::size_t i = 0; i < sim.log.records.size(); ++i)
    EXPECT_EQ(dep.log.records[i].test_accuracy,
              sim.log.records[i].test_accuracy);
  EXPECT_EQ(dep.stats.selected_updates, sim.stats.selected_updates);
  for (const auto& st : dep.clients) {
    EXPECT_TRUE(st.completed);
    EXPECT_EQ(st.rounds_trained, rounds);
  }
  // A clean network books no resilience overhead.
  EXPECT_EQ(dep.log.ledger.total_reconnects(), 0);
  EXPECT_EQ(dep.log.ledger.total_retransmitted_bytes(), 0);
}

TEST(Session, CrashedClientDegradesRoundAndRejoins) {
  // Client 3 abruptly drops its TCP connection on receiving round 2's MODEL
  // (before scoring). With quorum=3 the server must complete every round —
  // never hang — and the client's redial must be booked as a reconnect.
  const auto spec = testutil::small_task_spec();
  const auto client = testutil::small_client_config();
  const auto params = testutil::small_params();
  const int rounds = 4;

  const auto dep = testutil::run_deployed_tcp(
      spec, client, params, rounds, /*quorum=*/3,
      /*deadline=*/milliseconds(5000), /*crash_client=*/3, /*crash_round=*/2);

  // The server finished all rounds (run() returned and evaluated each one).
  ASSERT_EQ(dep.log.records.size(), static_cast<std::size_t>(rounds));
  for (const auto& rec : dep.log.records) EXPECT_GE(rec.participants, 1);

  // The crash and the rejoin both happened and were accounted.
  EXPECT_GE(dep.clients[3].reconnects, 1);
  EXPECT_GE(dep.log.ledger.total_reconnects(), 1);
  EXPECT_GE(dep.log.ledger.reconnects_of(3), 1);

  // The surviving clients ran the whole session normally.
  for (int id = 0; id < 3; ++id) {
    EXPECT_TRUE(dep.clients[static_cast<std::size_t>(id)].completed) << id;
    EXPECT_EQ(dep.clients[static_cast<std::size_t>(id)].rounds_trained,
              rounds)
        << id;
  }
  // The crashed client got back in and trained at least the later rounds.
  EXPECT_GE(dep.clients[3].rounds_trained, 2);
}

// --- Quorum-after-deadline with a connected-but-silent peer. -------------

TEST(Session, QuorumAfterDeadlineWithSilentPeer) {
  // One cooperative scripted peer and one peer that connects, receives
  // models, and never answers. With quorum=1 and a short deadline the server
  // must finish each round on the cooperative peer alone, waiting exactly
  // the deadline (not forever) for the silent one.
  auto spec = testutil::small_task_spec();
  spec.clients = 2;
  spec.train_samples = 80;
  spec.test_samples = 40;
  const auto params = testutil::small_params();

  auto task = cli::build_task(spec);
  ServerSessionConfig scfg;
  scfg.params = params;
  scfg.rounds = 2;
  scfg.eval_every = 1;
  scfg.expected_clients = 2;
  scfg.quorum = 1;
  scfg.round_deadline = milliseconds(250);
  scfg.idle_poll = milliseconds(2);
  scfg.client_config =
      cli::task_to_kv(spec, testutil::small_client_config());
  ServerSession server(scfg, task.factory, /*test=*/nullptr);

  auto pair0 = make_loopback_pair();
  auto pair1 = make_loopback_pair();
  server.add_transport(std::move(pair0.first));
  server.add_transport(std::move(pair1.first));

  auto hello = [](std::uint32_t id) {
    Frame f;
    f.type = MsgType::kHello;
    f.client_id = id;
    f.payload = encode_hello(kProtocolVersion);
    return f;
  };

  // Peer 0: protocol-level cooperative client. No local training — it
  // reports a fixed score and uploads a zero delta, which is enough to
  // drive the server's round machine.
  std::thread peer0([t = std::move(pair0.second), &hello]() mutable {
    ASSERT_TRUE(t->send(hello(0)));
    std::optional<compress::DgcCompressor> comp;
    std::uint64_t dims = 0;
    for (;;) {
      auto f = t->recv(milliseconds(2000));
      if (!f) {
        if (t->closed()) return;
        continue;
      }
      if (f->type == MsgType::kWelcome) {
        const WelcomeInfo w = parse_welcome(f->payload);
        dims = w.param_count;
        comp.emplace(static_cast<std::int64_t>(dims), w.params.dgc);
      } else if (f->type == MsgType::kModel) {
        Frame s;
        s.type = MsgType::kScore;
        s.round = f->round;
        s.client_id = 0;
        s.payload = encode_f64(0.75);
        t->send(s);
      } else if (f->type == MsgType::kSelect) {
        UpdatePayload u;
        u.msg = comp->compress(std::vector<float>(dims, 0.0f),
                               parse_f64(f->payload));
        u.num_examples = 10;
        u.mean_loss = 0.5f;
        u.raw_delta_norm = 0.0;
        Frame uf;
        uf.type = MsgType::kUpdate;
        uf.round = f->round;
        uf.client_id = 0;
        uf.payload = encode_update(u);
        t->send(uf);
      } else if (f->type == MsgType::kShutdown) {
        return;
      }
    }
  });

  // Peer 1: joins, then goes mute (receives and ignores everything).
  std::thread peer1([t = std::move(pair1.second), &hello]() mutable {
    ASSERT_TRUE(t->send(hello(1)));
    for (;;) {
      auto f = t->recv(milliseconds(2000));
      if (!f) {
        if (t->closed()) return;
        continue;
      }
      if (f->type == MsgType::kShutdown) return;
    }
  });

  const auto t0 = steady_clock::now();
  const fl::TrainLog log = server.run();
  const auto elapsed = std::chrono::duration_cast<milliseconds>(
      steady_clock::now() - t0);
  peer0.join();
  peer1.join();

  ASSERT_EQ(log.records.size(), 2u);
  for (const auto& rec : log.records) EXPECT_EQ(rec.participants, 1);
  EXPECT_EQ(log.ledger.delivered_updates(), 2);
  EXPECT_EQ(server.stats().selected_updates, 2);
  // Each score phase had to wait out the deadline for the silent peer.
  EXPECT_GE(elapsed, milliseconds(2 * 250 - 50));
}

// --- A protocol-wrong UPDATE drops the peer, never the server. -----------

Frame hello_frame(std::uint32_t id) {
  Frame f;
  f.type = MsgType::kHello;
  f.client_id = id;
  f.payload = encode_hello(kProtocolVersion);
  return f;
}

// Runs two rounds with one cooperative scripted peer and one malicious peer
// whose UPDATE payload is wire-valid but violates the session contract
// (non-top-k kind or wrong dimension). The server must finish every round
// on the cooperative peer — dropping only the offender's connection — and
// run() must return normally, never throw.
void run_bad_update_scenario(
    const std::function<compress::EncodedGradient(std::uint64_t dims,
                                                  double ratio)>& make_bad) {
  auto spec = testutil::small_task_spec();
  spec.clients = 2;
  spec.train_samples = 80;
  spec.test_samples = 40;

  auto task = cli::build_task(spec);
  ServerSessionConfig scfg;
  scfg.params = testutil::small_params();
  scfg.rounds = 2;
  scfg.eval_every = 1;
  scfg.expected_clients = 2;
  scfg.quorum = 1;
  scfg.round_deadline = milliseconds(250);
  scfg.idle_poll = milliseconds(2);
  scfg.client_config =
      cli::task_to_kv(spec, testutil::small_client_config());
  ServerSession server(scfg, task.factory, /*test=*/nullptr);

  auto pair0 = make_loopback_pair();
  auto pair1 = make_loopback_pair();
  server.add_transport(std::move(pair0.first));
  server.add_transport(std::move(pair1.first));

  // Peer 0: cooperative (scores, uploads a valid zero delta).
  std::thread peer0([t = std::move(pair0.second)]() mutable {
    EXPECT_TRUE(t->send(hello_frame(0)));
    std::optional<compress::DgcCompressor> comp;
    std::uint64_t dims = 0;
    for (;;) {
      auto f = t->recv(milliseconds(2000));
      if (!f) {
        if (t->closed()) return;
        continue;
      }
      if (f->type == MsgType::kWelcome) {
        const WelcomeInfo w = parse_welcome(f->payload);
        dims = w.param_count;
        comp.emplace(static_cast<std::int64_t>(dims), w.params.dgc);
      } else if (f->type == MsgType::kModel) {
        Frame s;
        s.type = MsgType::kScore;
        s.round = f->round;
        s.client_id = 0;
        s.payload = encode_f64(0.75);
        t->send(s);
      } else if (f->type == MsgType::kSelect) {
        UpdatePayload u;
        u.msg = comp->compress(std::vector<float>(dims, 0.0f),
                               parse_f64(f->payload));
        u.num_examples = 10;
        u.mean_loss = 0.5f;
        u.raw_delta_norm = 0.0;
        Frame uf;
        uf.type = MsgType::kUpdate;
        uf.round = f->round;
        uf.client_id = 0;
        uf.payload = encode_update(u);
        t->send(uf);
      } else if (f->type == MsgType::kShutdown) {
        return;
      }
    }
  });

  // Peer 1: scores honestly, then answers SELECT with the bad message. The
  // server must cut this connection (observed as closed()).
  std::thread peer1([t = std::move(pair1.second), &make_bad]() mutable {
    EXPECT_TRUE(t->send(hello_frame(1)));
    std::uint64_t dims = 0;
    for (;;) {
      auto f = t->recv(milliseconds(2000));
      if (!f) {
        if (t->closed()) return;  // dropped by the server: expected
        continue;
      }
      if (f->type == MsgType::kWelcome) {
        dims = parse_welcome(f->payload).param_count;
      } else if (f->type == MsgType::kModel) {
        Frame s;
        s.type = MsgType::kScore;
        s.round = f->round;
        s.client_id = 1;
        s.payload = encode_f64(0.9);
        t->send(s);
      } else if (f->type == MsgType::kSelect) {
        UpdatePayload u;
        u.msg = make_bad(dims, parse_f64(f->payload));
        u.num_examples = 10;
        u.mean_loss = 0.5f;
        u.raw_delta_norm = 0.0;
        Frame uf;
        uf.type = MsgType::kUpdate;
        uf.round = f->round;
        uf.client_id = 1;
        uf.payload = encode_update(u);
        t->send(uf);
      } else if (f->type == MsgType::kShutdown) {
        return;
      }
    }
  });

  const fl::TrainLog log = server.run();  // must not throw
  peer0.join();
  peer1.join();

  ASSERT_EQ(log.records.size(), 2u);
  // Only the cooperative peer's update was ever applied.
  for (const auto& rec : log.records) EXPECT_EQ(rec.participants, 1);
  EXPECT_EQ(server.stats().selected_updates, 2);
}

TEST(Session, UpdateWithWrongKindDropsPeerNotServer) {
  run_bad_update_scenario([](std::uint64_t dims, double) {
    compress::EncodedGradient g;  // dense identity where top-k is required
    g.kind = compress::CodecKind::kIdentity;
    g.dense_size = static_cast<std::int64_t>(dims);
    g.values.assign(dims, 0.0f);
    return g;
  });
}

TEST(Session, UpdateWithWrongDimensionDropsPeerNotServer) {
  run_bad_update_scenario([](std::uint64_t dims, double ratio) {
    // Top-k as required, but compressed against the wrong model size.
    compress::DgcCompressor comp(static_cast<std::int64_t>(dims) + 1,
                                 core::AdaFlParams{}.dgc);
    return comp.compress(std::vector<float>(dims + 1, 1.0f), ratio);
  });
}

// --- Client-side recovery from a malformed server payload. ---------------

TEST(Session, ClientRedialsOnMalformedServerPayload) {
  // Connection 1 answers HELLO with a truncated WELCOME: parse_welcome
  // throws CheckError, and the documented behavior is close-and-redial —
  // not a dead client process. Connection 2 then shuts the session down.
  auto pair0 = make_loopback_pair();
  auto pair1 = make_loopback_pair();

  std::thread server([s0 = std::move(pair0.first),
                      s1 = std::move(pair1.first)]() mutable {
    auto h0 = s0->recv(milliseconds(2000));
    ASSERT_TRUE(h0 && h0->type == MsgType::kHello);
    WelcomeInfo w;
    w.rounds = 1;
    w.param_count = 16;
    Frame wf;
    wf.type = MsgType::kWelcome;
    wf.client_id = kServerId;
    wf.payload = encode_welcome(w);
    wf.payload.pop_back();  // truncated: parse_welcome must throw
    ASSERT_TRUE(s0->send(wf));
    // The client must drop this connection...
    for (;;) {
      auto f = s0->recv(milliseconds(2000));
      if (!f) {
        ASSERT_TRUE(s0->closed());
        break;
      }
    }
    // ...and redial. Greet the rejoin and end the session.
    auto h1 = s1->recv(milliseconds(2000));
    ASSERT_TRUE(h1 && h1->type == MsgType::kHello);
    Frame down;
    down.type = MsgType::kShutdown;
    down.client_id = kServerId;
    ASSERT_TRUE(s1->send(down));
  });

  std::vector<std::unique_ptr<Transport>> dials;
  dials.push_back(std::move(pair0.second));
  dials.push_back(std::move(pair1.second));
  std::size_t next = 0;
  std::optional<cli::TaskBundle> bundle;
  ClientSession cs(
      testutil::test_client_config(0),
      [&dials, &next]() -> std::unique_ptr<Transport> {
        return next < dials.size() ? std::move(dials[next++]) : nullptr;
      },
      testutil::make_bootstrap(&bundle));
  const ClientRunStats st = cs.run();
  server.join();

  EXPECT_TRUE(st.completed);
  EXPECT_EQ(st.reconnects, 1);
}

TEST(Session, BackoffBudgetRefillsAfterEachCompletedRound) {
  // ISSUE 8 satellite 1: periodic connection blips must not cumulatively
  // exhaust the redial budget. Client 1's link dies once per round for
  // three rounds, and every redial episode burns one failed dial; with
  // max_attempts=2 the run only completes if the budget refills after each
  // completed round.
  const cli::TaskSpec spec = testutil::small_task_spec();
  const fl::ClientTrainConfig client = testutil::small_client_config();
  const core::AdaFlParams params = testutil::small_params();
  const int rounds = 4;
  const testutil::SimResult sim =
      testutil::run_simulator(spec, client, params, rounds);

  auto task = cli::build_task(spec);
  ServerSessionConfig scfg =
      testutil::make_server_config(spec, client, params, rounds);
  scfg.retransmit_nudge = milliseconds(150);
  ServerSession server(scfg, task.factory, &task.test);

  const int n = spec.clients;
  std::vector<std::optional<cli::TaskBundle>> bundles(
      static_cast<std::size_t>(n));
  std::vector<ClientRunStats> stats(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      ClientSessionConfig ccfg = testutil::test_client_config(id);
      ccfg.backoff.initial = milliseconds(1);
      ccfg.backoff.max = milliseconds(10);
      if (id == 1) ccfg.backoff.max_attempts = 2;
      int dials = 0;
      int conns = 0;
      ClientSession cs(
          ccfg,
          [&, id]() -> std::unique_ptr<Transport> {
            if (id == 1 && dials++ % 2 == 0) return nullptr;  // 1 fail/episode
            auto pair = make_loopback_pair();
            server.add_transport(std::move(pair.first));
            std::unique_ptr<Transport> t = std::move(pair.second);
            if (id == 1 && ++conns <= 3) {
              // Connection c dies on receiving round c+1's MODEL — i.e.
              // right after round c completed and refilled the budget.
              FaultPlan plan;
              plan.sever_on_recv(MsgType::kModel, conns + 1);
              t = std::make_unique<FaultyTransport>(std::move(t),
                                                    std::move(plan));
            }
            return t;
          },
          testutil::make_bootstrap(&bundles[static_cast<std::size_t>(id)]));
      stats[static_cast<std::size_t>(id)] = cs.run();
    });
  }
  const fl::TrainLog log = server.run();
  for (auto& t : threads) t.join();

  EXPECT_FALSE(log.interrupted);
  for (const auto& st : stats) EXPECT_TRUE(st.completed);
  EXPECT_EQ(stats[1].reconnects, 3);
  // Every sever was absorbed by rejoin + catchup dedup: still bitwise.
  EXPECT_EQ(server.global(), sim.global);
}

TEST(Session, RoundTotalDeadlineCapsAStalledUpdatePhase) {
  // ISSUE 8 satellite 2: a quorum-selected client that dies between the
  // score and update phases must not hang the round until the (long)
  // per-phase deadline — the whole-round cap aggregates what arrived,
  // emits update_lost, and moves on.
  cli::TaskSpec spec = testutil::small_task_spec();
  spec.clients = 2;
  const fl::ClientTrainConfig client = testutil::small_client_config();
  core::AdaFlParams params = testutil::small_params();
  const int rounds = 3;

  auto task = cli::build_task(spec);
  ServerSessionConfig scfg =
      testutil::make_server_config(spec, client, params, rounds);
  scfg.quorum = 1;
  scfg.round_deadline = milliseconds(20000);     // per-phase: generous
  scfg.round_total_deadline = milliseconds(500);  // whole round: tight
  scfg.retransmit_nudge = milliseconds(150);
  metrics::Tracer tracer;
  metrics::Registry registry;
  metrics::RunManifest manifest;
  manifest.producer = "test";
  tracer.open(::testing::TempDir() + "round_deadline.trace.jsonl", manifest);
  tracer.attach_registry(&registry);
  scfg.tracer = &tracer;
  ServerSession server(scfg, task.factory, &task.test);

  const int n = spec.clients;
  std::vector<std::optional<cli::TaskBundle>> bundles(
      static_cast<std::size_t>(n));
  std::vector<ClientRunStats> stats(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      ClientSessionConfig ccfg = testutil::test_client_config(id);
      ccfg.backoff.initial = milliseconds(1);
      ccfg.backoff.max = milliseconds(10);
      ccfg.backoff.max_attempts = 2;
      bool connected = false;
      ClientSession cs(
          ccfg,
          [&, id]() -> std::unique_ptr<Transport> {
            if (id == 1 && connected) return nullptr;  // dead for good
            connected = true;
            auto pair = make_loopback_pair();
            server.add_transport(std::move(pair.first));
            std::unique_ptr<Transport> t = std::move(pair.second);
            if (id == 1) {
              // Dies the moment it is selected: scored, then silent.
              FaultPlan plan;
              plan.sever_on_recv(MsgType::kSelect);
              t = std::make_unique<FaultyTransport>(std::move(t),
                                                    std::move(plan));
            }
            return t;
          },
          testutil::make_bootstrap(&bundles[static_cast<std::size_t>(id)]));
      stats[static_cast<std::size_t>(id)] = cs.run();
    });
  }
  const auto t0 = steady_clock::now();
  const fl::TrainLog log = server.run();
  const auto elapsed = steady_clock::now() - t0;
  for (auto& t : threads) t.join();
  tracer.close();

  // Well under the 20 s per-phase deadline the stall would otherwise ride.
  EXPECT_LT(elapsed, milliseconds(10000));
  EXPECT_FALSE(log.interrupted);
  EXPECT_EQ(log.records.size(), static_cast<std::size_t>(rounds));
  EXPECT_GE(registry.counter("trace.events.update_lost").value(), 1);
  EXPECT_TRUE(stats[0].completed);
  EXPECT_FALSE(stats[1].completed);
}

}  // namespace
}  // namespace adafl::net::transport
