#include "tensor/shape.h"

#include <gtest/gtest.h>

namespace adafl::tensor {
namespace {

TEST(Shape, DefaultIsScalar) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, InitializerListAndNumel) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s[2], 4);
}

TEST(Shape, NegativeIndexCountsFromBack) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s[-1], 4);
  EXPECT_EQ(s[-3], 2);
}

TEST(Shape, OutOfRangeIndexThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s[2], CheckError);
  EXPECT_THROW(s[-3], CheckError);
}

TEST(Shape, NegativeDimensionThrows) {
  EXPECT_THROW(Shape({2, -1}), CheckError);
}

TEST(Shape, ZeroDimensionGivesZeroNumel) {
  Shape s{3, 0, 2};
  EXPECT_EQ(s.numel(), 0);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_NE(Shape({1, 2}), Shape({1, 2, 1}));
}

TEST(Shape, ToString) {
  EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
  EXPECT_EQ(Shape{}.to_string(), "[]");
}

TEST(Shape, VectorConstructor) {
  std::vector<std::int64_t> dims{5, 6};
  Shape s(dims);
  EXPECT_EQ(s.numel(), 30);
  EXPECT_EQ(s.dims(), dims);
}

}  // namespace
}  // namespace adafl::tensor
