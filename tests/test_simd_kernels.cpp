// SIMD kernel backend tests: avx2-vs-scalar twins, determinism, dispatch.
//
// The contract under test (see docs/performance.md "Kernel dispatch"):
//   - scalar is the bitwise reference; avx2 matmul-family results agree with
//     it to float epsilon (different accumulation order, same math);
//   - avx2 elementwise / log-softmax / top-k / QSGD kernels are bitwise
//     identical to scalar by construction;
//   - within any one backend, results are bitwise deterministic across
//     thread counts;
//   - the dispatched hot path keeps the steady-state zero-tensor-allocation
//     guarantee.
// Every avx2 case skips (not fails) on machines without AVX2+FMA.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "compress/codec.h"
#include "compress/dgc.h"
#include "core/parallel.h"
#include "fl/client.h"
#include "fl_fixtures.h"
#include "gradcheck.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/dispatch.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace adafl {
namespace {

using tensor::KernelBackend;
using tensor::Tensor;

/// RAII: run a scope under one backend, restore scalar after (tests in this
/// binary must not leak a backend into each other).
class BackendScope {
 public:
  explicit BackendScope(KernelBackend b) { tensor::set_kernel_backend(b); }
  ~BackendScope() { tensor::set_kernel_backend(KernelBackend::kScalar); }
};

#define SKIP_WITHOUT_AVX2()                                          \
  if (!tensor::cpu_supports_avx2()) {                                \
    GTEST_SKIP() << "no AVX2+FMA on this machine ("                  \
                 << tensor::cpu_feature_string() << ")";             \
  }

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.flat().data(), b.flat().data(),
                           a.flat().size() * sizeof(float)))
      << what << " differs bitwise between backends";
}

void expect_epsilon_equal(const Tensor& a, const Tensor& b, float rel,
                          const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const float ref = a.flat()[i];
    const float got = b.flat()[i];
    ASSERT_NEAR(ref, got, rel * std::max(1.0f, std::abs(ref)))
        << what << " at flat index " << i;
  }
}

TEST(SimdDispatch, ResolveAndQuery) {
  EXPECT_EQ(tensor::resolve_kernel_backend("scalar"), KernelBackend::kScalar);
  EXPECT_STREQ(tensor::kernel_backend_name(KernelBackend::kScalar), "scalar");
  EXPECT_STREQ(tensor::kernel_backend_name(KernelBackend::kAvx2), "avx2");
  EXPECT_THROW((void)tensor::resolve_kernel_backend("neon"),
               CheckError);
  if (tensor::cpu_supports_avx2()) {
    EXPECT_EQ(tensor::resolve_kernel_backend("avx2"), KernelBackend::kAvx2);
    EXPECT_EQ(tensor::resolve_kernel_backend("auto"), KernelBackend::kAvx2);
  } else {
    EXPECT_THROW((void)tensor::resolve_kernel_backend("avx2"),
                 CheckError);
    EXPECT_EQ(tensor::resolve_kernel_backend("auto"), KernelBackend::kScalar);
  }
  // The feature string always names something parseable.
  EXPECT_FALSE(tensor::cpu_feature_string().empty());
}

TEST(SimdDispatch, SetBackendIsObserved) {
  SKIP_WITHOUT_AVX2();
  BackendScope scope(KernelBackend::kAvx2);
  EXPECT_EQ(tensor::kernel_backend(), KernelBackend::kAvx2);
  EXPECT_STREQ(tensor::kernel_backend_name(), "avx2");
  tensor::set_kernel_backend(KernelBackend::kScalar);
  EXPECT_EQ(tensor::kernel_backend(), KernelBackend::kScalar);
}

// ---- avx2-vs-scalar twins ---------------------------------------------

TEST(SimdKernels, MatmulFamilyMatchesScalarToEpsilon) {
  SKIP_WITHOUT_AVX2();
  tensor::Rng rng(11);
  // Ragged sizes exercise every row-tile height (1..6) and n-tail width.
  const std::int64_t cases[][3] = {{1, 1, 1},   {3, 5, 7},   {6, 16, 16},
                                   {7, 33, 17}, {64, 48, 50}, {129, 65, 31}};
  for (const auto& c : cases) {
    const auto m = c[0], k = c[1], n = c[2];
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor at = tensor::transpose2d(a);   // [k, m] for matmul_tn
    Tensor bt = tensor::transpose2d(b);   // [n, k] for matmul_nt

    Tensor c_s, ctn_s, cnt_s;
    {
      BackendScope scope(KernelBackend::kScalar);
      c_s = tensor::matmul(a, b);
      ctn_s = tensor::matmul_tn(at, b);
      cnt_s = tensor::matmul_nt(a, bt);
    }
    BackendScope scope(KernelBackend::kAvx2);
    expect_epsilon_equal(c_s, tensor::matmul(a, b), 1e-5f, "matmul");
    expect_epsilon_equal(ctn_s, tensor::matmul_tn(at, b), 1e-5f, "matmul_tn");
    expect_epsilon_equal(cnt_s, tensor::matmul_nt(a, bt), 1e-5f, "matmul_nt");
  }
}

TEST(SimdKernels, ElementwiseBitwiseIdenticalToScalar) {
  SKIP_WITHOUT_AVX2();
  tensor::Rng rng(12);
  // 1031 is odd and > 8 lanes: covers full vectors plus a scalar tail.
  Tensor a = Tensor::randn({1031}, rng);
  Tensor b = Tensor::randn({1031}, rng);
  a.flat()[3] = -0.0f;   // relu must preserve the scalar -0 -> +0 behavior
  a.flat()[5] = 0.0f;

  Tensor add_s({1031}), mul_s({1031}), scale_s({1031});
  Tensor relu_s({1031}), mask_s({1031});
  {
    BackendScope scope(KernelBackend::kScalar);
    tensor::add_into(a, b, add_s);
    tensor::mul_into(a, b, mul_s);
    tensor::scale_into(a, 0.37f, scale_s);
    tensor::relu_into(a, relu_s, mask_s);
  }
  BackendScope scope(KernelBackend::kAvx2);
  Tensor add_v({1031}), mul_v({1031}), scale_v({1031});
  Tensor relu_v({1031}), mask_v({1031});
  tensor::add_into(a, b, add_v);
  tensor::mul_into(a, b, mul_v);
  tensor::scale_into(a, 0.37f, scale_v);
  tensor::relu_into(a, relu_v, mask_v);
  expect_bitwise_equal(add_s, add_v, "add_into");
  expect_bitwise_equal(mul_s, mul_v, "mul_into");
  expect_bitwise_equal(scale_s, scale_v, "scale_into");
  expect_bitwise_equal(relu_s, relu_v, "relu_into");
  expect_bitwise_equal(mask_s, mask_v, "relu mask");
}

TEST(SimdKernels, LogSoftmaxBitwiseIdenticalToScalar) {
  SKIP_WITHOUT_AVX2();
  tensor::Rng rng(13);
  Tensor logits = Tensor::randn({37, 11}, rng);
  Tensor ref;
  {
    BackendScope scope(KernelBackend::kScalar);
    ref = tensor::log_softmax_rows(logits);
  }
  BackendScope scope(KernelBackend::kAvx2);
  expect_bitwise_equal(ref, tensor::log_softmax_rows(logits), "log_softmax");
}

TEST(SimdKernels, TopKSelectionIdenticalIncludingTies) {
  SKIP_WITHOUT_AVX2();
  tensor::Rng rng(14);
  std::vector<float> g(4097);
  for (auto& v : g) v = static_cast<float>(rng.normal());
  // Force magnitude ties straddling a plausible threshold, including a
  // +/- pair (same magnitude bits): tie-break must go to the lower index.
  g[100] = 0.75f;
  g[2000] = -0.75f;
  g[4000] = 0.75f;

  for (std::int64_t k : {1, 7, 64, 1000, 4097}) {
    std::vector<std::uint32_t> ref, out, scratch;
    {
      BackendScope scope(KernelBackend::kScalar);
      ref = compress::top_k_by_magnitude(g, k);
      compress::top_k_by_magnitude_into(g, k, out, scratch);
      ASSERT_EQ(ref, out) << "scalar _into diverged at k=" << k;
    }
    BackendScope scope(KernelBackend::kAvx2);
    compress::top_k_by_magnitude_into(g, k, out, scratch);
    EXPECT_EQ(ref, out) << "avx2 selection diverged at k=" << k;
  }
}

TEST(SimdKernels, QsgdEncodeDecodeBitwiseIdenticalToScalar) {
  SKIP_WITHOUT_AVX2();
  tensor::Rng rng(15);
  std::vector<float> g(2053);
  for (auto& v : g) v = static_cast<float>(rng.normal());

  compress::EncodedGradient ref;
  std::vector<float> ref_dec;
  {
    BackendScope scope(KernelBackend::kScalar);
    compress::QsgdCodec codec(16);
    tensor::Rng enc_rng(99);
    ref = codec.encode(g, enc_rng);
    ref_dec = ref.decode();
  }
  BackendScope scope(KernelBackend::kAvx2);
  compress::QsgdCodec codec(16);
  tensor::Rng enc_rng(99);
  const compress::EncodedGradient got = codec.encode(g, enc_rng);
  ASSERT_EQ(ref.levels, got.levels) << "QSGD levels differ";
  EXPECT_EQ(ref.scale, got.scale);
  EXPECT_EQ(ref.wire_bytes, got.wire_bytes);
  const std::vector<float> got_dec = got.decode();
  ASSERT_EQ(0, std::memcmp(ref_dec.data(), got_dec.data(),
                           ref_dec.size() * sizeof(float)))
      << "QSGD decode differs bitwise";
}

// ---- Gradients under the SIMD backend ---------------------------------

TEST(SimdKernels, GradcheckPassesUnderAvx2) {
  SKIP_WITHOUT_AVX2();
  BackendScope scope(KernelBackend::kAvx2);
  tensor::Rng rng(21);
  {
    nn::Linear layer(12, 9, rng);
    Tensor x = Tensor::randn({5, 12}, rng);
    nn::testing::check_layer_gradients(layer, x, 31);
  }
  {
    nn::Conv2d layer(2, 4, 3, rng, 1, 1);
    Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
    nn::testing::check_layer_gradients(layer, x, 32);
  }
}

// ---- Same-backend determinism across thread counts --------------------

TEST(SimdKernels, BackendIsBitwiseDeterministicAcrossThreadCounts) {
  std::vector<KernelBackend> backends{KernelBackend::kScalar};
  if (tensor::cpu_supports_avx2())
    backends.push_back(KernelBackend::kAvx2);
  tensor::Rng rng(22);
  // 200x173x190 is large enough to cross the parallel-grain threshold, so
  // 2/4-thread runs genuinely partition the rows.
  Tensor a = Tensor::randn({200, 173}, rng);
  Tensor b = Tensor::randn({173, 190}, rng);
  Tensor bt = tensor::transpose2d(b);

  for (KernelBackend backend : backends) {
    BackendScope scope(backend);
    core::set_num_threads(1);
    const Tensor c1 = tensor::matmul(a, b);
    const Tensor cnt1 = tensor::matmul_nt(a, bt);
    for (int threads : {2, 4}) {
      core::set_num_threads(threads);
      expect_bitwise_equal(c1, tensor::matmul(a, b), "matmul vs threads");
      expect_bitwise_equal(cnt1, tensor::matmul_nt(a, bt),
                           "matmul_nt vs threads");
    }
    core::set_num_threads(0);
  }
}

TEST(SimdKernels, ClientTrainingDeterministicWithinBackendAcrossThreads) {
  SKIP_WITHOUT_AVX2();
  BackendScope scope(KernelBackend::kAvx2);
  auto run = [](int threads) {
    core::set_num_threads(threads);
    auto task = fl::testing::make_mini_task(2);
    auto clients = fl::make_clients(task.factory, &task.train, task.parts,
                                    task.client, {}, 7);
    nn::Model probe(task.factory());
    std::vector<float> global = probe.get_flat();
    fl::FlClient::LocalResult res;
    clients[0].train_from_into(global, res);
    core::set_num_threads(0);
    return res.delta;
  };
  const std::vector<float> d1 = run(1);
  const std::vector<float> d4 = run(4);
  ASSERT_EQ(d1.size(), d4.size());
  EXPECT_EQ(0, std::memcmp(d1.data(), d4.data(), d1.size() * sizeof(float)))
      << "avx2 training delta depends on thread count";
}

// ---- Zero-allocation guarantee with dispatch enabled -------------------

TEST(SimdKernels, ClientRoundSteadyStateZeroAllocUnderAvx2) {
  SKIP_WITHOUT_AVX2();
  BackendScope scope(KernelBackend::kAvx2);
  auto task = fl::testing::make_mini_task(2);
  auto clients = fl::make_clients(task.factory, &task.train, task.parts,
                                  task.client, {}, 7);
  nn::Model probe(task.factory());
  std::vector<float> global = probe.get_flat();
  const auto dim = static_cast<std::int64_t>(global.size());

  compress::DgcConfig dgc_cfg;
  dgc_cfg.momentum = 0.9f;
  std::vector<compress::DgcCompressor> comps;
  for (std::size_t i = 0; i < clients.size(); ++i)
    comps.emplace_back(dim, dgc_cfg);

  std::vector<fl::FlClient::LocalResult> results(clients.size());
  std::vector<compress::EncodedGradient> msgs(clients.size());
  auto one_round = [&] {
    for (std::size_t i = 0; i < clients.size(); ++i) {
      clients[i].train_from_into(global, results[i]);
      comps[i].compress_into(results[i].delta, 8.0, msgs[i]);
    }
  };

  one_round();  // warmup
  const std::uint64_t before = tensor::tensor_allocations();
  one_round();
  one_round();
  EXPECT_EQ(tensor::tensor_allocations() - before, 0u)
      << "avx2 client round allocated tensors in steady state";
}

// ---- Alignment guarantee -----------------------------------------------

TEST(SimdKernels, TensorStorageIs32ByteAligned) {
  tensor::Rng rng(23);
  for (std::int64_t n : {1, 7, 64, 1000}) {
    Tensor t = Tensor::randn({n}, rng);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.flat().data()) % 32, 0u)
        << "size " << n;
    Tensor r;
    r.resize({n, 3});
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(r.flat().data()) % 32, 0u);
  }
}

}  // namespace
}  // namespace adafl
