#include "fl/sync_trainer.h"

#include <gtest/gtest.h>

#include "fl_fixtures.h"

namespace adafl::fl {
namespace {

using testing::make_mini_task;

SyncConfig base_config(Algorithm algo, int rounds = 12) {
  SyncConfig cfg;
  cfg.algo = algo;
  cfg.rounds = rounds;
  cfg.participation = 1.0;
  cfg.seed = 3;
  return cfg;
}

// Every synchronous algorithm must learn the mini task well above chance
// (25% for 4 classes).
class SyncAlgorithmTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SyncAlgorithmTest, LearnsAboveChance) {
  auto task = make_mini_task();
  SyncConfig cfg = base_config(GetParam(), 15);
  cfg.client = task.client;
  cfg.server_lr = 0.02f;  // FedAdam server step
  if (GetParam() == Algorithm::kFedProx) cfg.client.prox_mu = 0.01f;
  SyncTrainer trainer(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = trainer.run();
  EXPECT_GT(log.final_accuracy(), 0.5) << to_string(GetParam());
  EXPECT_EQ(log.records.size(), 15u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SyncAlgorithmTest,
                         ::testing::Values(Algorithm::kFedAvg,
                                           Algorithm::kFedAdam,
                                           Algorithm::kFedProx,
                                           Algorithm::kScaffold),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(SyncTrainer, DeterministicUnderSeed) {
  auto task = make_mini_task();
  SyncConfig cfg = base_config(Algorithm::kFedAvg, 5);
  cfg.client = task.client;
  auto run = [&] {
    SyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
    return t.run();
  };
  auto a = run();
  auto b = run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i)
    EXPECT_EQ(a.records[i].test_accuracy, b.records[i].test_accuracy);
}

TEST(SyncTrainer, ParticipationControlsUpdateCount) {
  auto task = make_mini_task(4);
  SyncConfig cfg = base_config(Algorithm::kFedAvg, 10);
  cfg.client = task.client;
  cfg.participation = 0.5;
  SyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  EXPECT_EQ(log.ledger.delivered_updates(), 10 * 2);
}

TEST(SyncTrainer, DropoutFaultLosesUpdates) {
  auto task = make_mini_task(4);
  SyncConfig cfg = base_config(Algorithm::kFedAvg, 20);
  cfg.client = task.client;
  cfg.faults.kind = FaultKind::kDropout;
  cfg.faults.unreliable_fraction = 0.5;  // clients 0,1 drop w.p. 0.5
  SyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  const auto delivered = log.ledger.delivered_updates();
  EXPECT_LT(delivered, 20 * 4);
  EXPECT_GT(delivered, 20 * 2);  // reliable half always delivers
}

TEST(SyncTrainer, DataLossFaultHalvesUnreliableUpdates) {
  auto task = make_mini_task(4);
  SyncConfig cfg = base_config(Algorithm::kFedAvg, 20);
  cfg.client = task.client;
  cfg.faults.kind = FaultKind::kDataLoss;
  cfg.faults.unreliable_fraction = 0.5;
  SyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  // Unreliable clients deliver every other participation: 2 clients * 10.
  EXPECT_EQ(log.ledger.delivered_updates(), 20 * 2 + 2 * 10);
}

TEST(SyncTrainer, LedgerCountsDenseTraffic) {
  auto task = make_mini_task(2);
  SyncConfig cfg = base_config(Algorithm::kFedAvg, 3);
  cfg.client = task.client;
  SyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  const auto dense = log.dense_update_bytes;
  EXPECT_EQ(log.ledger.total_upload_bytes(), 3 * 2 * dense);
  EXPECT_EQ(log.ledger.total_download_bytes(), 3 * 2 * dense);
  EXPECT_EQ(log.ledger.min_update_bytes(), dense);
  EXPECT_EQ(log.ledger.max_update_bytes(), dense);
}

TEST(SyncTrainer, SimulatedClockAdvancesWithLinks) {
  auto task = make_mini_task(2);
  SyncConfig cfg = base_config(Algorithm::kFedAvg, 4);
  cfg.client = task.client;
  cfg.links = net::make_fleet(2, 0.0, net::LinkQuality::kGood,
                              net::LinkQuality::kGood);
  SyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  EXPECT_GT(log.total_time, 0.0);
  // Later records have later times.
  for (std::size_t i = 1; i < log.records.size(); ++i)
    EXPECT_GT(log.records[i].time, log.records[i - 1].time);
}

TEST(SyncTrainer, CongestedLinksSlowTheRound) {
  auto task = make_mini_task(2);
  SyncConfig cfg = base_config(Algorithm::kFedAvg, 4);
  cfg.client = task.client;
  cfg.links = net::make_fleet(2, 0.0, net::LinkQuality::kGood,
                              net::LinkQuality::kGood);
  SyncTrainer fast(cfg, task.factory, &task.train, task.parts, &task.test);
  const double t_fast = fast.run().total_time;
  cfg.links = net::make_fleet(2, 1.0, net::LinkQuality::kGood,
                              net::LinkQuality::kCongested);
  SyncTrainer slow(cfg, task.factory, &task.train, task.parts, &task.test);
  const double t_slow = slow.run().total_time;
  EXPECT_GT(t_slow, t_fast);
}

TEST(SyncTrainer, EvalEveryThinsRecords) {
  auto task = make_mini_task(2);
  SyncConfig cfg = base_config(Algorithm::kFedAvg, 10);
  cfg.client = task.client;
  cfg.eval_every = 4;
  SyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  auto log = t.run();
  // Rounds 4, 8, 10 (final round always recorded).
  ASSERT_EQ(log.records.size(), 3u);
  EXPECT_EQ(log.records.back().round, 10);
}

TEST(SyncTrainer, InvalidConfigThrows) {
  auto task = make_mini_task(2);
  SyncConfig cfg = base_config(Algorithm::kFedAvg, 0);
  cfg.client = task.client;
  EXPECT_THROW(
      SyncTrainer(cfg, task.factory, &task.train, task.parts, &task.test),
      CheckError);
  cfg.rounds = 5;
  cfg.participation = 0.0;
  EXPECT_THROW(
      SyncTrainer(cfg, task.factory, &task.train, task.parts, &task.test),
      CheckError);
  cfg.participation = 1.0;
  cfg.links.resize(1);  // wrong count for 2 clients
  EXPECT_THROW(
      SyncTrainer(cfg, task.factory, &task.train, task.parts, &task.test),
      CheckError);
}

TEST(TrainLogHelpers, SeriesAndBest) {
  TrainLog log;
  log.records.push_back({1, 0.5, 0.3, 1.0, 2});
  log.records.push_back({2, 1.0, 0.8, 0.5, 2});
  log.records.push_back({3, 1.5, 0.7, 0.4, 2});
  EXPECT_DOUBLE_EQ(log.final_accuracy(), 0.7);
  EXPECT_DOUBLE_EQ(log.best_accuracy(), 0.8);
  EXPECT_EQ(log.accuracy_vs_round().x.size(), 3u);
  EXPECT_DOUBLE_EQ(log.accuracy_vs_time().y_at(1.2), 0.8);
}

}  // namespace
}  // namespace adafl::fl
