#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <map>

namespace adafl::data {
namespace {

TEST(Synthetic, ShapesMatchSpec) {
  SyntheticConfig cfg;
  cfg.spec = {3, 8, 8, 5};
  cfg.num_samples = 20;
  Dataset ds = make_synthetic(cfg);
  EXPECT_EQ(ds.size(), 20);
  EXPECT_EQ(ds.images().shape(), tensor::Shape({20, 3, 8, 8}));
}

TEST(Synthetic, LabelsAreBalancedRoundRobin) {
  SyntheticConfig cfg;
  cfg.spec.classes = 4;
  cfg.num_samples = 40;
  Dataset ds = make_synthetic(cfg);
  std::map<int, int> counts;
  for (auto l : ds.labels()) counts[l]++;
  EXPECT_EQ(counts.size(), 4u);
  for (auto& [cls, n] : counts) EXPECT_EQ(n, 10);
}

TEST(Synthetic, DeterministicUnderSeed) {
  auto a = make_synthetic(mnist_like(50, 3));
  auto b = make_synthetic(mnist_like(50, 3));
  EXPECT_EQ(a.labels(), b.labels());
  for (std::int64_t i = 0; i < a.images().size(); ++i)
    EXPECT_EQ(a.images()[i], b.images()[i]);
}

TEST(Synthetic, DifferentSampleSeedsShareClassStructure) {
  // Same proto_seed, different seeds: a nearest-class-mean classifier fit
  // on one split must transfer to the other (shared prototypes).
  auto train = make_synthetic(mnist_like(400, 1));
  auto test = make_synthetic(mnist_like(200, 2));
  const auto spec = train.spec();
  const std::int64_t d = spec.channels * spec.height * spec.width;
  // Class means from train.
  std::vector<std::vector<double>> mean(
      static_cast<std::size_t>(spec.classes),
      std::vector<double>(static_cast<std::size_t>(d), 0.0));
  std::vector<int> counts(static_cast<std::size_t>(spec.classes), 0);
  for (std::int64_t i = 0; i < train.size(); ++i) {
    const int y = train.labels()[static_cast<std::size_t>(i)];
    counts[static_cast<std::size_t>(y)]++;
    for (std::int64_t k = 0; k < d; ++k)
      mean[static_cast<std::size_t>(y)][static_cast<std::size_t>(k)] +=
          train.images()[i * d + k];
  }
  for (std::size_t c = 0; c < mean.size(); ++c)
    for (auto& v : mean[c]) v /= counts[c];
  // Classify test by nearest mean.
  int correct = 0;
  for (std::int64_t i = 0; i < test.size(); ++i) {
    double best = 1e300;
    int arg = -1;
    for (std::size_t c = 0; c < mean.size(); ++c) {
      double dist = 0.0;
      for (std::int64_t k = 0; k < d; ++k) {
        const double diff = test.images()[i * d + k] -
                            mean[c][static_cast<std::size_t>(k)];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        arg = static_cast<int>(c);
      }
    }
    if (arg == test.labels()[static_cast<std::size_t>(i)]) ++correct;
  }
  // Prototypes + modest noise: should beat chance (10%) by a wide margin.
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.5);
}

TEST(Synthetic, LabelNoiseFlipsRoughlyExpectedFraction) {
  SyntheticConfig clean = mnist_like(2000, 5);
  SyntheticConfig noisy = clean;
  noisy.label_noise = 0.3;
  auto a = make_synthetic(clean);
  auto b = make_synthetic(noisy);
  int flips = 0;
  for (std::size_t i = 0; i < a.labels().size(); ++i)
    if (a.labels()[i] != b.labels()[i]) ++flips;
  // 30% redrawn uniformly -> ~27% actually differ.
  EXPECT_NEAR(flips / 2000.0, 0.27, 0.05);
}

TEST(Synthetic, ZeroShiftZeroNoiseIsPrototypeExactly) {
  SyntheticConfig cfg;
  cfg.spec = {1, 8, 8, 3};
  cfg.num_samples = 6;
  cfg.noise_stddev = 0.0;
  cfg.max_shift = 0;
  Dataset ds = make_synthetic(cfg);
  // Samples 0 and 3 are both class 0 -> identical images.
  const std::int64_t d = 64;
  for (std::int64_t k = 0; k < d; ++k)
    EXPECT_EQ(ds.images()[k], ds.images()[3 * d + k]);
}

TEST(Synthetic, InvalidConfigThrows) {
  SyntheticConfig cfg;
  cfg.num_samples = 0;
  EXPECT_THROW(make_synthetic(cfg), CheckError);
  cfg.num_samples = 10;
  cfg.spec.classes = 1;
  EXPECT_THROW(make_synthetic(cfg), CheckError);
  cfg.spec.classes = 2;
  cfg.label_noise = 1.5;
  EXPECT_THROW(make_synthetic(cfg), CheckError);
}

TEST(Synthetic, ConvenienceConfigsHaveDocumentedShapes) {
  EXPECT_EQ(mnist_like(10, 1).spec.channels, 1);
  EXPECT_EQ(cifar10_like(10, 1).spec.channels, 3);
  EXPECT_EQ(cifar100_like(10, 1).spec.classes, 20);
}

}  // namespace
}  // namespace adafl::data
