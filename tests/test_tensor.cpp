#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace adafl::tensor {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
}

TEST(Tensor, ZeroFilledConstruction) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillValueConstruction) {
  Tensor t({4}, 2.5f);
  for (float v : t.flat()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, VectorAdoption) {
  Tensor t({2, 2}, std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(t.at({1, 0}), 3.0f);
}

TEST(Tensor, VectorAdoptionLengthMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), CheckError);
}

TEST(Tensor, MultiDimAccessRowMajor) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  t.at({0, 0}) = 1.0f;
  EXPECT_EQ(t[0], 1.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({2, 0}), CheckError);
  EXPECT_THROW(t.at({0, 3}), CheckError);
  EXPECT_THROW(t.at({0}), CheckError);  // wrong rank
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.shape(), Shape({3, 2}));
  EXPECT_EQ(r.at({2, 1}), 6.0f);
}

TEST(Tensor, ReshapeNumelMismatchThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshaped({4, 2}), CheckError);
}

TEST(Tensor, InPlaceAddSub) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{4, 5, 6});
  a += b;
  EXPECT_EQ(a[0], 5.0f);
  EXPECT_EQ(a[2], 9.0f);
  a -= b;
  EXPECT_EQ(a[1], 2.0f);
}

TEST(Tensor, ShapeMismatchArithmeticThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a += b, CheckError);
  EXPECT_THROW(a -= b, CheckError);
  EXPECT_THROW(a.axpy(1.0f, b), CheckError);
}

TEST(Tensor, ScalarMultiply) {
  Tensor a({2}, std::vector<float>{3, -4});
  a *= 0.5f;
  EXPECT_EQ(a[0], 1.5f);
  EXPECT_EQ(a[1], -2.0f);
}

TEST(Tensor, Axpy) {
  Tensor a({2}, std::vector<float>{1, 1});
  Tensor b({2}, std::vector<float>{2, 3});
  a.axpy(2.0f, b);
  EXPECT_EQ(a[0], 5.0f);
  EXPECT_EQ(a[1], 7.0f);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, std::vector<float>{1, -2, 3, 0.5f});
  EXPECT_FLOAT_EQ(t.sum(), 2.5f);
  EXPECT_FLOAT_EQ(t.min(), -2.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_EQ(t.argmax(), 2);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(1 + 4 + 9 + 0.25), 1e-5);
}

TEST(Tensor, ArgmaxFirstOnTies) {
  Tensor t({3}, std::vector<float>{5, 5, 1});
  EXPECT_EQ(t.argmax(), 0);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(5);
  Tensor t = Tensor::randn({10000}, rng, 1.0f, 2.0f);
  double sum = 0.0;
  for (float v : t.flat()) sum += v;
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.1);
}

TEST(Tensor, RandRange) {
  Rng rng(5);
  Tensor t = Tensor::rand({1000}, rng, -1.0f, 1.0f);
  for (float v : t.flat()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Tensor, FillOverwrites) {
  Tensor t({3}, 1.0f);
  t.fill(9.0f);
  for (float v : t.flat()) EXPECT_EQ(v, 9.0f);
}

TEST(FlatOps, DotAndNorm) {
  std::vector<float> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_NEAR(l2_norm(a), std::sqrt(14.0), 1e-12);
}

TEST(FlatOps, DotLengthMismatchThrows) {
  std::vector<float> a{1, 2}, b{1};
  EXPECT_THROW(dot(a, b), CheckError);
}

TEST(FlatOps, CosineSimilarityCases) {
  std::vector<float> a{1, 0}, b{0, 1}, c{2, 0}, d{-3, 0}, zero{0, 0};
  EXPECT_NEAR(cosine_similarity(a, b), 0.0, 1e-12);
  EXPECT_NEAR(cosine_similarity(a, c), 1.0, 1e-12);
  EXPECT_NEAR(cosine_similarity(a, d), -1.0, 1e-12);
  EXPECT_EQ(cosine_similarity(a, zero), 0.0);  // zero-vector convention
}

}  // namespace
}  // namespace adafl::tensor
