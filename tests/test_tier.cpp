// Tier-transparency oracle: a hierarchical deployment — root ServerSession,
// flrelay-style RelaySession mid-tiers, leaf ClientSessions — must produce
// *bitwise* the same global weights as the in-process simulator (and the
// flat deployed path) with the same AdaFlParams::agg_group, and the same
// semantic trace stream. The relay forwards lossless pre-summed partials in
// the exact ascending-id / ascending-group association the root uses for
// local groups, so the tree depth must be unobservable in the result.
//
// The fault matrix then pins the resilience story:
//   * a leaf's UPDATE dropped in flight      -> recovered by nudges, clean
//   * a leaf crash mid-round, rejoining      -> superset UPDATE-AGG upgrade
//   * a relay killed with a standby armed    -> promotion re-parents leaves
//   * a relay killed with no standby         -> survivors continue; equal to
//     a flat run whose corresponding clients die the same round
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "metrics/trace.h"
#include "net/transport/faulty.h"
#include "tier_test_util.h"

namespace adafl {
namespace {

using metrics::ParsedTrace;
using metrics::RunManifest;
using metrics::TraceEvent;
using metrics::TraceEventType;
using metrics::Tracer;
using net::transport::FaultDir;
using net::transport::FaultPlan;
using net::transport::FaultRule;
using net::transport::FaultyTransport;
using net::transport::Frame;
using net::transport::MsgType;
using net::transport::Transport;
using testutil::RelaySpec;
using testutil::TieredOptions;
using testutil::TierLink;

constexpr int kRounds = 5;

cli::TaskSpec eight_client_spec() {
  cli::TaskSpec spec = testutil::small_task_spec();
  spec.clients = 8;
  return spec;
}

/// G = 4: two aggregation groups of four — one per relay in the 2-level
/// topology, so each relay ships exactly one UPDATE-AGG per round with
/// selected leaves in it.
core::AdaFlParams grouped_params() {
  core::AdaFlParams p = testutil::small_params();
  p.max_selected = 3;  // selection pressure: skips happen every round
  p.agg_group = 4;
  return p;
}

std::vector<RelaySpec> two_level() {
  return {{/*base=*/0, /*count=*/4, /*parent=*/-1},
          {/*base=*/4, /*count=*/4, /*parent=*/-1}};
}

/// The flat reference, computed once: simulator with the same agg_group.
const testutil::SimResult& sim_reference() {
  static const testutil::SimResult sim = testutil::run_simulator(
      eight_client_spec(), testutil::small_client_config(), grouped_params(),
      kRounds);
  return sim;
}

RunManifest test_manifest(const char* producer, const cli::TaskSpec& spec) {
  RunManifest m;
  m.producer = producer;
  m.algo = "adafl-sync";
  m.seed = spec.seed;
  m.rounds = kRounds;
  m.clients = spec.clients;
  return m;
}

bool is_semantic(const TraceEvent& e) {
  return e.type < TraceEventType::kFrameTx;
}

std::vector<TraceEvent> semantic_stream(const std::vector<TraceEvent>& evs) {
  std::vector<TraceEvent> out;
  for (TraceEvent e : evs) {
    if (!is_semantic(e)) continue;
    e.t = 0.0;
    out.push_back(e);
  }
  return out;
}

void expect_semantic_equal(const std::string& sim_path,
                           const std::string& tier_path) {
  const ParsedTrace sim = metrics::read_trace_file(sim_path);
  const ParsedTrace tier = metrics::read_trace_file(tier_path);
  const auto a = semantic_stream(sim.events);
  const auto b = semantic_stream(tier.events);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << "divergence at event " << i << ": sim="
                          << Tracer::format_line(a[i])
                          << " tiered=" << Tracer::format_line(b[i]);
}

TEST(TierTransparency, TwoLevelLoopbackBitwiseAndTraceEqual) {
  const auto spec = eight_client_spec();
  const auto client = testutil::small_client_config();
  const auto params = grouped_params();

  const std::string sim_path = ::testing::TempDir() + "tier_sim.jsonl";
  const std::string tier_path = ::testing::TempDir() + "tier_dep.jsonl";
  Tracer sim_tracer;
  sim_tracer.open(sim_path, test_manifest("flsim", spec));
  const auto sim =
      testutil::run_simulator(spec, client, params, kRounds, &sim_tracer);
  sim_tracer.close();

  Tracer tier_tracer;
  tier_tracer.open(tier_path, test_manifest("tiered", spec));
  TieredOptions opt;
  opt.tracer = &tier_tracer;
  const auto tiered = testutil::run_deployed_tiered(spec, client, params,
                                                    kRounds, two_level(), opt);
  tier_tracer.close();

  ASSERT_EQ(sim.global, tiered.global);  // bitwise tier transparency
  // The flat deployed path with the same grouping is also the same bits:
  // grouping changes the association, not the deployment's semantics.
  const auto flat = testutil::run_deployed_loopback(spec, client, params,
                                                    kRounds);
  ASSERT_EQ(flat.global, tiered.global);

  // Every round flowed through the relays as pre-aggregated partials.
  ASSERT_EQ(tiered.relay_stats.size(), 2u);
  for (const auto& rs : tiered.relay_stats) {
    EXPECT_TRUE(rs.completed);
    EXPECT_EQ(rs.rounds_seen, kRounds);
    EXPECT_GT(rs.aggs_sent, 0);
  }
  for (const auto& cs : tiered.clients) EXPECT_TRUE(cs.completed);

  expect_semantic_equal(sim_path, tier_path);
  std::remove(sim_path.c_str());
  std::remove(tier_path.c_str());
}

TEST(TierTransparency, TwoLevelTcpBitwiseEqual) {
  TieredOptions opt;
  opt.link = TierLink::kTcp;
  const auto tiered = testutil::run_deployed_tiered(
      eight_client_spec(), testutil::small_client_config(), grouped_params(),
      kRounds, two_level(), opt);
  ASSERT_EQ(sim_reference().global, tiered.global);
  for (const auto& rs : tiered.relay_stats) EXPECT_TRUE(rs.completed);
}

TEST(TierTransparency, TwoLevelTcpEventLoopRootBitwiseEqual) {
  TieredOptions opt;
  opt.link = TierLink::kTcp;
  opt.root_event_loop = true;  // relay handshake via the epoll loop path
  const auto tiered = testutil::run_deployed_tiered(
      eight_client_spec(), testutil::small_client_config(), grouped_params(),
      kRounds, two_level(), opt);
  ASSERT_EQ(sim_reference().global, tiered.global);
  for (const auto& rs : tiered.relay_stats) EXPECT_TRUE(rs.completed);
}

TEST(TierTransparency, TwoLevelUdpFecBitwiseEqual) {
  TieredOptions opt;
  opt.link = TierLink::kUdpFec;  // every hop FEC-coded datagrams
  const auto tiered = testutil::run_deployed_tiered(
      eight_client_spec(), testutil::small_client_config(), grouped_params(),
      kRounds, two_level(), opt);
  ASSERT_EQ(sim_reference().global, tiered.global);
  for (const auto& rs : tiered.relay_stats) EXPECT_TRUE(rs.completed);
}

TEST(TierTransparency, ThreeLevelSubRelayBitwiseAndTraceEqual) {
  const auto spec = eight_client_spec();
  const auto client = testutil::small_client_config();
  const auto params = grouped_params();

  const std::string sim_path = ::testing::TempDir() + "tier3_sim.jsonl";
  const std::string tier_path = ::testing::TempDir() + "tier3_dep.jsonl";
  Tracer sim_tracer;
  sim_tracer.open(sim_path, test_manifest("flsim", spec));
  const auto sim =
      testutil::run_simulator(spec, client, params, kRounds, &sim_tracer);
  sim_tracer.close();

  // server -> relay[0,8) -> sub-relay[0,4); leaves 0..3 behind the
  // sub-relay (three hops from the root), 4..7 behind the mid relay.
  const std::vector<RelaySpec> tree = {
      {/*base=*/0, /*count=*/8, /*parent=*/-1},
      {/*base=*/0, /*count=*/4, /*parent=*/0}};
  Tracer tier_tracer;
  tier_tracer.open(tier_path, test_manifest("tiered3", spec));
  TieredOptions opt;
  opt.tracer = &tier_tracer;
  const auto tiered = testutil::run_deployed_tiered(spec, client, params,
                                                    kRounds, tree, opt);
  tier_tracer.close();

  ASSERT_EQ(sim.global, tiered.global);
  // The mid relay aggregated its own leaves AND passed the sub-relay's
  // partials through bit-exactly.
  EXPECT_GT(tiered.relay_stats[0].aggs_sent, 0);
  EXPECT_GT(tiered.relay_stats[0].aggs_forwarded, 0);
  EXPECT_GT(tiered.relay_stats[1].aggs_sent, 0);
  for (const auto& rs : tiered.relay_stats) EXPECT_TRUE(rs.completed);

  expect_semantic_equal(sim_path, tier_path);
  std::remove(sim_path.c_str());
  std::remove(tier_path.c_str());
}

TEST(TierTransparency, LeafUpdateDropRecoveredThroughRelay) {
  // Leaf 2's round-1 UPDATE silently vanishes between leaf and relay
  // (round 1 is warm-up: every client is selected). The relay's own
  // retransmit nudge re-SELECTs, the leaf re-sends its cached bytes, and
  // the round commits with nothing lost — bitwise equal to the clean run.
  std::atomic<int> faults_fired{0};
  TieredOptions opt;
  opt.leaf_wrap = [&faults_fired](
                      int id, std::unique_ptr<Transport> t)
      -> std::unique_ptr<Transport> {
    if (id != 2) return t;
    FaultPlan plan;
    plan.drop(FaultDir::kSend, MsgType::kUpdate, /*round=*/1);
    auto faulty =
        std::make_unique<FaultyTransport>(std::move(t), std::move(plan));
    faulty->set_on_fault([&faults_fired](const FaultRule&, const Frame&) {
      faults_fired.fetch_add(1);
    });
    return faulty;
  };
  const auto tiered = testutil::run_deployed_tiered(
      eight_client_spec(), testutil::small_client_config(), grouped_params(),
      kRounds, two_level(), opt);
  ASSERT_EQ(faults_fired.load(), 1) << "the scripted drop never fired";
  ASSERT_EQ(sim_reference().global, tiered.global);
}

TEST(TierFaults, ChildCrashMidRoundRecoveredBySupersetAgg) {
  // Leaf 2 dies abruptly on round 3's SELECT: it has scored (so it IS
  // selected) but the update never leaves. The relay reports CHILD_GONE and
  // ships group [0,4) without it — then the leaf rejoins, the server's
  // nudge re-SELECTs through the relay, and the relay re-ships the group as
  // a superset UPDATE-AGG which replaces the committed partial at the root.
  // Net effect after recovery: bitwise identical to the clean run.
  std::atomic<int> faults_fired{0};
  auto crash_fired = std::make_shared<std::atomic<bool>>(false);
  TieredOptions opt;
  opt.leaf_cfg_tweak = [](int id, net::transport::ClientSessionConfig& c) {
    if (id != 2) return;
    c.backoff.initial = std::chrono::milliseconds(1);
    c.backoff.max = std::chrono::milliseconds(20);
  };
  opt.leaf_wrap = [&faults_fired, crash_fired](
                      int id, std::unique_ptr<Transport> t)
      -> std::unique_ptr<Transport> {
    if (id != 2 || crash_fired->load()) return t;
    FaultPlan plan;
    plan.sever_on_recv(MsgType::kSelect, /*round=*/3);
    auto faulty =
        std::make_unique<FaultyTransport>(std::move(t), std::move(plan));
    faulty->set_on_fault(
        [&faults_fired, crash_fired](const FaultRule&, const Frame&) {
          faults_fired.fetch_add(1);
          crash_fired->store(true);
        });
    return faulty;
  };
  const auto tiered = testutil::run_deployed_tiered(
      eight_client_spec(), testutil::small_client_config(), grouped_params(),
      kRounds, two_level(), opt);
  ASSERT_EQ(faults_fired.load(), 1) << "the scripted crash never fired";
  ASSERT_EQ(sim_reference().global, tiered.global);
}

TEST(TierFaults, RelayKilledStandbyPromotionReparentsLeaves) {
  // Relay 0 is killed (kill -9 style: parent link severed on round 3's
  // MODEL, children dropped with no goodbye) with a standby covering the
  // same range. The leaves drain their redial budget against the dead
  // endpoint, rotate to the standby, and the standby claims the range from
  // the root mid-round — which re-serves round state so nothing is lost.
  TieredOptions opt;
  opt.kill_relay = 0;
  opt.kill_round = 3;
  opt.leaf_cfg_tweak = [](int id, net::transport::ClientSessionConfig& c) {
    if (id >= 4) return;  // only relay 0's leaves need fast failover
    c.backoff.initial = std::chrono::milliseconds(2);
    c.backoff.max = std::chrono::milliseconds(20);
    c.backoff.max_attempts = 4;
  };
  const std::vector<RelaySpec> topo = {
      {/*base=*/0, /*count=*/4, /*parent=*/-1, /*standby=*/false},
      {/*base=*/0, /*count=*/4, /*parent=*/-1, /*standby=*/true},
      {/*base=*/4, /*count=*/4, /*parent=*/-1, /*standby=*/false}};
  const auto tiered = testutil::run_deployed_tiered(
      eight_client_spec(), testutil::small_client_config(), grouped_params(),
      kRounds, topo, opt);

  ASSERT_EQ(sim_reference().global, tiered.global);
  EXPECT_FALSE(tiered.relay_stats[0].completed);  // the victim
  EXPECT_TRUE(tiered.relay_stats[1].completed);   // the promoted standby
  EXPECT_GT(tiered.relay_stats[1].aggs_sent, 0);
  EXPECT_TRUE(tiered.relay_stats[2].completed);
  // Every leaf finished: relay 0's leaves each rotated endpoints.
  for (int id = 0; id < 8; ++id) {
    EXPECT_TRUE(tiered.clients[static_cast<std::size_t>(id)].completed)
        << "leaf " << id;
    if (id < 4) {
      EXPECT_GE(
          tiered.clients[static_cast<std::size_t>(id)].endpoint_rotations, 1)
          << "leaf " << id;
    }
  }
}

TEST(TierFaults, RelayKilledNoStandbySurvivorsMatchFlatCrashRun) {
  // No standby this time: relay 0 dies on round 3's MODEL and takes leaves
  // 0..3 with it for the rest of the run. The root must keep committing
  // rounds with the surviving relay (quorum 4), ending bitwise equal to a
  // FLAT run whose clients 0..3 die permanently on the same round — the
  // relay is transparent even in how it fails.
  const auto spec = eight_client_spec();
  const auto client = testutil::small_client_config();
  const auto params = grouped_params();
  const auto deadline = std::chrono::milliseconds(3000);

  TieredOptions opt;
  opt.kill_relay = 0;
  opt.kill_round = 3;
  opt.quorum = 4;
  opt.round_deadline = deadline;
  opt.leaf_cfg_tweak = [](int id, net::transport::ClientSessionConfig& c) {
    if (id >= 4) return;  // orphans must give up fast, not hang the join
    c.backoff.initial = std::chrono::milliseconds(1);
    c.backoff.max = std::chrono::milliseconds(10);
    c.backoff.max_attempts = 5;
  };
  const auto tiered = testutil::run_deployed_tiered(
      spec, client, params, kRounds, two_level(), opt);

  const auto flat = testutil::run_deployed_flat_crash(
      spec, client, params, kRounds, /*crash_ids=*/{0, 1, 2, 3},
      /*crash_round=*/3, /*quorum=*/4, deadline);

  ASSERT_EQ(flat.global, tiered.global);
  EXPECT_FALSE(tiered.relay_stats[0].completed);
  EXPECT_TRUE(tiered.relay_stats[1].completed);
  for (int id = 0; id < 4; ++id) {
    EXPECT_FALSE(tiered.clients[static_cast<std::size_t>(id)].completed);
    EXPECT_FALSE(flat.clients[static_cast<std::size_t>(id)].completed);
  }
  // The dead subtree shows up as missing uploads, not a wedged server.
  EXPECT_EQ(tiered.stats.selected_updates, flat.stats.selected_updates);
}

TEST(TierFaults, SlowRelayedScoresDoNotTripQuorumExit) {
  // Regression for the relay-aware quorum accounting: one relay covers all
  // four leaves and quorum is 1. Three leaves delay their round-2 SCORE by
  // 150 ms; if the server counted the relay connection as a single client
  // (instead of one per announced leaf), the score phase would exit as soon
  // as the first score landed and select from a partial view. The per-leaf
  // liveness fix keeps it waiting for every announced leaf, so the result
  // stays bitwise equal to the simulator.
  const auto spec = testutil::small_task_spec();  // 4 clients
  const auto client = testutil::small_client_config();
  core::AdaFlParams params = testutil::small_params();
  params.agg_group = 4;

  const auto sim = testutil::run_simulator(spec, client, params, kRounds);

  std::atomic<int> delays_fired{0};
  TieredOptions opt;
  opt.quorum = 1;
  opt.leaf_wrap = [&delays_fired](int id, std::unique_ptr<Transport> t)
      -> std::unique_ptr<Transport> {
    if (id == 0) return t;
    FaultPlan plan;
    plan.delay_frame(FaultDir::kSend, MsgType::kScore, /*round=*/2,
                     std::chrono::milliseconds(150));
    auto faulty =
        std::make_unique<FaultyTransport>(std::move(t), std::move(plan));
    faulty->set_on_fault([&delays_fired](const FaultRule&, const Frame&) {
      delays_fired.fetch_add(1);
    });
    return faulty;
  };
  const std::vector<RelaySpec> topo = {{/*base=*/0, /*count=*/4, -1}};
  const auto tiered = testutil::run_deployed_tiered(spec, client, params,
                                                    kRounds, topo, opt);
  ASSERT_EQ(delays_fired.load(), 3) << "the scripted delays never fired";
  ASSERT_EQ(sim.global, tiered.global);
}

}  // namespace
}  // namespace adafl
