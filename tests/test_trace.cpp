// Property tests for the structured JSONL run trace: every event type
// round-trips its serialized line bit-exactly (doubles included), the
// manifest round-trips, malformed lines are rejected, and two same-seed
// simulator runs produce byte-identical trace files.
#include "metrics/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "deployed_test_util.h"
#include "metrics/ledger.h"
#include "metrics/registry.h"
#include "tensor/check.h"

namespace adafl::metrics {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

void expect_roundtrip(const TraceEvent& e) {
  const std::string line = Tracer::format_line(e);
  const TraceEvent back = Tracer::parse_line(line);
  EXPECT_EQ(e, back) << line;
  // Formatting the parsed event again must reproduce the exact same bytes.
  EXPECT_EQ(line, Tracer::format_line(back));
}

TEST(TraceRoundTrip, EveryEventType) {
  expect_roundtrip(ev_round_start(3, 1.25));
  expect_roundtrip(ev_client_selected(2, 7, 0.6499999999999999, 4.0));
  expect_roundtrip(ev_client_skipped(2, 0, 0.12345678901234567));
  expect_roundtrip(ev_update_delivered(5, 3, 112168, 48, 1.7861133813858032));
  expect_roundtrip(ev_update_lost(5, 1));
  expect_roundtrip(ev_round_end(5, 8, 1.8415361195802689, true, 0.18, 0.057));
  expect_roundtrip(ev_round_end(6, 8, 1.5, false, 0.0, 0.06));
  expect_roundtrip(ev_checkpoint(5, "/tmp/ckpt/server.ckpt", 0.9));
  expect_roundtrip(ev_resume(4, 0.0));
  expect_roundtrip(ev_frame(TraceEventType::kFrameTx, 2, 1, "MODEL", 9000,
                            0.001));
  expect_roundtrip(ev_frame(TraceEventType::kFrameRx, 2, -1, "HELLO", 32,
                            0.002));
  expect_roundtrip(ev_retransmit(3, 2, 512, 1.5));
  expect_roundtrip(ev_reconnect(3, 2, 1.75));
}

// Doubles must survive serialize->parse bit-exactly across magnitudes,
// including values with no short decimal representation.
TEST(TraceRoundTrip, RandomDoublesBitExact) {
  std::mt19937_64 rng(0xADAF1u);
  std::uniform_real_distribution<double> mantissa(-1.0, 1.0);
  std::uniform_int_distribution<int> exponent(-300, 300);
  for (int i = 0; i < 3000; ++i) {
    const double score = std::ldexp(mantissa(rng), exponent(rng) / 8);
    const double t = std::ldexp(std::abs(mantissa(rng)), exponent(rng));
    TraceEvent e = ev_client_selected(i, i % 64, score, 1.0 + i % 7);
    expect_roundtrip(e);
    TraceEvent r = ev_round_end(i, i % 9, mantissa(rng) * 10.0, i % 2 == 0,
                                std::abs(mantissa(rng)), t);
    expect_roundtrip(r);
  }
}

TEST(TraceRoundTrip, StringEscaping) {
  expect_roundtrip(ev_checkpoint(1, "quote\" backslash\\ tab\t nl\n", 0.5));
  expect_roundtrip(ev_checkpoint(2, std::string("nul\0byte", 8), 0.5));
  expect_roundtrip(ev_checkpoint(3, "utf8 \xC3\xA9\xE2\x82\xAC", 0.5));
}

TEST(TraceRoundTrip, Manifest) {
  RunManifest m;
  m.producer = "test";
  m.algo = "adafl-sync";
  m.seed = 0xDEADBEEFCAFEBABEull;
  m.rounds = 40;
  m.clients = 16;
  m.start_round = 7;
  m.git = "e72987e-dirty";
  m.config = {{"dataset", "mnist"}, {"lr", "0.05"}, {"odd\"key", "v\\al"}};
  const std::string line = Tracer::format_manifest(m);
  const RunManifest back = Tracer::parse_manifest(line);
  EXPECT_EQ(m, back);
  EXPECT_EQ(line, Tracer::format_manifest(back));
}

TEST(TraceParse, RejectsMalformed) {
  EXPECT_THROW(Tracer::parse_line(""), CheckError);
  EXPECT_THROW(Tracer::parse_line("{}"), CheckError);
  EXPECT_THROW(Tracer::parse_line("not json"), CheckError);
  EXPECT_THROW(Tracer::parse_line(R"({"ev":"no_such_event","round":1})"),
               CheckError);
  EXPECT_THROW(Tracer::parse_line(R"({"ev":"round_start","bogus":1,"t":0})"),
               CheckError);
  // Truncations of a valid line never parse.
  const std::string good =
      Tracer::format_line(ev_round_end(5, 8, 1.5, true, 0.25, 0.057));
  for (std::size_t n = 0; n < good.size(); ++n)
    EXPECT_THROW(Tracer::parse_line(good.substr(0, n)), CheckError) << n;
  // Trailing garbage is rejected too.
  EXPECT_THROW(Tracer::parse_line(good + "x"), CheckError);
}

TEST(TraceFile, WriteReadBack) {
  const std::string path = temp_path("adafl_trace_rw.jsonl");
  RunManifest m;
  m.producer = "test";
  m.algo = "adafl-sync";
  m.seed = 9;
  m.rounds = 2;
  m.clients = 2;
  std::vector<TraceEvent> evs = {
      ev_round_start(1, 0.0),
      ev_client_selected(1, 0, 0.9, 2.0),
      ev_update_delivered(1, 0, 640, 20, 2.1),
      ev_round_end(1, 1, 2.1, true, 0.5, 0.01),
  };
  Tracer tr;
  tr.open(path, m);
  EXPECT_TRUE(tr.enabled());
  for (const auto& e : evs) tr.record(e);
  EXPECT_EQ(tr.events_recorded(), evs.size());
  tr.close();
  EXPECT_FALSE(tr.enabled());

  ParsedTrace parsed = read_trace_file(path);
  m.git = build_git_describe();  // stamped by the writer
  EXPECT_EQ(parsed.manifest, m);
  EXPECT_EQ(parsed.events, evs);
  std::remove(path.c_str());
}

TEST(TraceFile, SetStartRoundAfterOpen) {
  const std::string path = temp_path("adafl_trace_sr.jsonl");
  Tracer tr;
  tr.open(path, RunManifest{});
  tr.set_start_round(5);  // legal until the first flush writes the manifest
  tr.record(ev_round_start(5, 0.0));
  tr.close();
  EXPECT_EQ(read_trace_file(path).manifest.start_round, 5);
  std::remove(path.c_str());
}

TEST(TraceFile, PartialTailToleratedOnlyWhenAskedFor) {
  const std::string path = temp_path("adafl_trace_tail.jsonl");
  Tracer tr;
  tr.open(path, RunManifest{});
  tr.record(ev_round_start(1, 0.0));
  tr.record(ev_round_end(1, 2, 1.0, false, 0.0, 0.5));
  tr.close();
  // Simulate a SIGKILL mid-write: chop the file inside the last line.
  std::string bytes = slurp(path);
  bytes.resize(bytes.size() - 9);
  { std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes; }

  EXPECT_THROW(read_trace_file(path), CheckError);
  ParsedTrace parsed = read_trace_file(path, /*tolerate_partial_tail=*/true);
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ(parsed.events[0], ev_round_start(1, 0.0));
  std::remove(path.c_str());
}

// The headline determinism property: two simulator runs with the same seed
// write byte-identical trace files (the "t" field is simulated time).
TEST(TraceDeterminism, SameSeedSimTracesAreByteIdentical) {
  const std::string pa = temp_path("adafl_trace_a.jsonl");
  const std::string pb = temp_path("adafl_trace_b.jsonl");
  const auto spec = testutil::small_task_spec();
  const auto client = testutil::small_client_config();
  const auto params = testutil::small_params();
  for (const std::string& path : {pa, pb}) {
    Tracer tr;
    RunManifest m;
    m.producer = "test";
    m.algo = "adafl-sync";
    m.seed = spec.seed;
    m.rounds = 3;
    m.clients = spec.clients;
    tr.open(path, m);
    testutil::run_simulator(spec, client, params, 3, &tr);
    tr.close();
  }
  const std::string a = slurp(pa), b = slurp(pb);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // And the stream is schema-valid with the expected per-round skeleton.
  ParsedTrace parsed = read_trace_file(pa);
  int round_starts = 0, round_ends = 0, selections = 0;
  for (const auto& e : parsed.events) {
    if (e.type == TraceEventType::kRoundStart) ++round_starts;
    if (e.type == TraceEventType::kRoundEnd) ++round_ends;
    if (e.type == TraceEventType::kClientSelected) ++selections;
  }
  EXPECT_EQ(round_starts, 3);
  EXPECT_EQ(round_ends, 3);
  EXPECT_GT(selections, 0);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(Registry, CountersGaugesHistograms) {
  Registry reg;
  Counter& c = reg.counter("x.count");
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7);
  EXPECT_EQ(&reg.counter("x.count"), &c);  // same handle on re-lookup

  reg.gauge("x.gauge").set(2.5);
  EXPECT_EQ(reg.gauge("x.gauge").value(), 2.5);

  Histogram& h = reg.histogram("x.hist");
  h.observe(0.5);   // bucket 0: [0,1)
  h.observe(1.0);   // bucket 1: [1,2)
  h.observe(900.0); // bucket 10: [512,1024)
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0.5);
  EXPECT_EQ(h.max(), 900.0);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[10], 1u);
  EXPECT_THROW(h.observe(-1.0), CheckError);
}

TEST(Registry, HistogramPercentile) {
  Histogram empty;
  EXPECT_EQ(empty.percentile(0.5), 0.0);

  // Single sample: every percentile collapses to it (the log-bucket
  // estimate is clamped to the exact observed [min, max]).
  Histogram one;
  one.observe(7.0);
  for (double p : {0.0, 0.5, 0.99, 1.0}) EXPECT_EQ(one.percentile(p), 7.0);

  // A spread over several buckets: tails anchor on the exact min/max, the
  // estimate is monotone in p and never leaves the observed range.
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.percentile(0.0), 1.0);
  EXPECT_EQ(h.percentile(1.0), 100.0);
  double prev = 0.0;
  for (double p : {0.1, 0.25, 0.5, 0.9, 0.95, 0.99}) {
    const double est = h.percentile(p);
    EXPECT_GE(est, prev) << "p=" << p;
    EXPECT_GE(est, h.min());
    EXPECT_LE(est, h.max());
    prev = est;
  }
  // The p50 of uniform 1..100 lands in the [32,64) bucket; the estimate
  // must be in the right neighbourhood even with log-bucket resolution.
  EXPECT_GT(h.percentile(0.5), 30.0);
  EXPECT_LT(h.percentile(0.5), 65.0);
  // p99 must sit near the top of the range.
  EXPECT_GE(h.percentile(0.99), 64.0);

  EXPECT_THROW(h.percentile(-0.1), CheckError);
  EXPECT_THROW(h.percentile(1.5), CheckError);
}

TEST(Registry, JsonIsDeterministicAndSorted) {
  auto build = [] {
    Registry reg;
    reg.counter("b.count").add(2);
    reg.counter("a.count").add(1);
    reg.gauge("z.gauge").set(0.25);
    reg.histogram("m.hist").observe(3.0);
    return reg.to_json();
  };
  const std::string j1 = build(), j2 = build();
  EXPECT_EQ(j1, j2);
  EXPECT_LT(j1.find("\"a.count\":1"), j1.find("\"b.count\":2"));
  EXPECT_NE(j1.find("\"z.gauge\":0.25"), std::string::npos);
  EXPECT_NE(j1.find("\"m.hist\""), std::string::npos);
}

TEST(Registry, LedgerExportIsIdempotent) {
  CommLedger ledger;
  ledger.record_download(0, 1000);
  ledger.record_upload(0, 300, true);
  ledger.record_upload(1, 200, false);
  Registry reg;
  reg.export_ledger(ledger);
  reg.export_ledger(ledger);  // exporting twice must not double-count
  EXPECT_EQ(reg.counter("comm.download_bytes").value(), 1000);
  // Upload bytes count *attempted* traffic: lost uploads still burned
  // client bandwidth.
  EXPECT_EQ(reg.counter("comm.upload_bytes").value(), 500);
  EXPECT_EQ(reg.counter("comm.attempted_updates").value(), 2);
  EXPECT_EQ(reg.counter("comm.delivered_updates").value(), 1);
}

TEST(Registry, TracerAttachCountsEvents) {
  const std::string path = temp_path("adafl_trace_reg.jsonl");
  Registry reg;
  Tracer tr;
  tr.open(path, RunManifest{});
  tr.attach_registry(&reg);
  tr.record(ev_round_start(1, 0.0));
  tr.record(ev_update_delivered(1, 0, 4096, 10, 1.0));
  tr.record(ev_update_delivered(1, 1, 2048, 10, 1.1));
  tr.close();
  EXPECT_EQ(reg.counter("trace.events.round_start").value(), 1);
  EXPECT_EQ(reg.counter("trace.events.update_delivered").value(), 2);
  EXPECT_EQ(reg.histogram("trace.update_bytes").count(), 2u);
  EXPECT_EQ(reg.histogram("trace.update_bytes").max(), 4096.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adafl::metrics
