// The trace-equivalence oracle (tier-1): a deployed ServerSession run over
// real transports must emit exactly the same *semantic* event stream —
// selections with scores and DGC ratios, deliveries with byte counts and
// losses, per-round aggregates — as the simulator on the same seed, even
// while a scripted transport fault forces the deployed path through its
// retransmission machinery. Transport events (frame_tx/frame_rx/
// retransmit/reconnect) exist only on the deployed side and must be
// explicitly ignored; this test proves that ignore-list is load-bearing.
//
// The same comparison is exposed offline as scripts/trace_diff.py; when a
// python3 interpreter is available the script is run against the two trace
// files as well, including a negative control proving it can fail.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "deployed_test_util.h"
#include "metrics/trace.h"
#include "net/transport/faulty.h"

namespace adafl {
namespace {

using metrics::ParsedTrace;
using metrics::RunManifest;
using metrics::TraceEvent;
using metrics::TraceEventType;
using metrics::Tracer;

constexpr int kRounds = 5;

cli::TaskSpec eight_client_spec() {
  cli::TaskSpec spec = testutil::small_task_spec();
  spec.clients = 8;
  return spec;
}

core::AdaFlParams eight_client_params() {
  core::AdaFlParams p = testutil::small_params();
  p.max_selected = 3;  // selection pressure: skips happen every round
  return p;
}

RunManifest test_manifest(const char* producer, const cli::TaskSpec& spec) {
  RunManifest m;
  m.producer = producer;
  m.algo = "adafl-sync";
  m.seed = spec.seed;
  m.rounds = kRounds;
  m.clients = spec.clients;
  return m;
}

bool is_semantic(const TraceEvent& e) {
  return e.type < TraceEventType::kFrameTx;
}

/// Semantic events with the wall-clock-ish "t" field zeroed — exactly the
/// comparison scripts/trace_diff.py performs.
std::vector<TraceEvent> semantic_stream(const std::vector<TraceEvent>& evs) {
  std::vector<TraceEvent> out;
  for (TraceEvent e : evs) {
    if (!is_semantic(e)) continue;
    e.t = 0.0;
    out.push_back(e);
  }
  return out;
}

int count_type(const std::vector<TraceEvent>& evs, TraceEventType t) {
  int n = 0;
  for (const auto& e : evs) n += e.type == t ? 1 : 0;
  return n;
}

TEST(TraceEquivalence, DeployedLoopbackMatchesSimulatorModuloTransport) {
  const auto spec = eight_client_spec();
  const auto client = testutil::small_client_config();
  const auto params = eight_client_params();
  const std::string sim_path = ::testing::TempDir() + "trace_eq_sim.jsonl";
  const std::string dep_path = ::testing::TempDir() + "trace_eq_dep.jsonl";

  Tracer sim_tracer;
  sim_tracer.open(sim_path, test_manifest("flsim", spec));
  const auto sim = testutil::run_simulator(spec, client, params, kRounds,
                                           &sim_tracer);
  sim_tracer.close();

  // Deployed twin with one scripted fault: client 2's round-1 UPDATE is
  // silently dropped on the send path (round 1 is warm-up, so client 2 is
  // guaranteed to be selected). The server's nudge machinery must re-request
  // and the client re-deliver — without changing the semantic stream.
  std::atomic<int> faults_fired{0};
  Tracer dep_tracer;
  dep_tracer.open(dep_path, test_manifest("deployed", spec));
  const auto dep = testutil::run_deployed_loopback(
      spec, client, params, kRounds, &dep_tracer,
      [&faults_fired](int id, std::unique_ptr<net::transport::Transport> t)
          -> std::unique_ptr<net::transport::Transport> {
        if (id != 2) return t;
        net::transport::FaultPlan plan;
        plan.drop(net::transport::FaultDir::kSend,
                  net::transport::MsgType::kUpdate, /*round=*/1);
        auto faulty = std::make_unique<net::transport::FaultyTransport>(
            std::move(t), std::move(plan));
        faulty->set_on_fault([&faults_fired](const net::transport::FaultRule&,
                                             const net::transport::Frame&) {
          faults_fired.fetch_add(1);
        });
        return faulty;
      });
  dep_tracer.close();

  ASSERT_EQ(faults_fired.load(), 1) << "the scripted drop never fired";
  ASSERT_EQ(sim.global, dep.global);  // bitwise, the PR-2 guarantee

  const ParsedTrace sim_trace = metrics::read_trace_file(sim_path);
  const ParsedTrace dep_trace = metrics::read_trace_file(dep_path);

  // The simulator never emits transport events...
  for (const auto& e : sim_trace.events)
    EXPECT_TRUE(is_semantic(e)) << metrics::to_string(e.type);
  // ...the deployed run does, including the retransmission the drop forced —
  // which is exactly why the diff must ignore them to come out empty.
  EXPECT_GT(count_type(dep_trace.events, TraceEventType::kFrameTx), 0);
  EXPECT_GT(count_type(dep_trace.events, TraceEventType::kFrameRx), 0);
  EXPECT_GE(count_type(dep_trace.events, TraceEventType::kRetransmit), 1);

  const auto sim_sem = semantic_stream(sim_trace.events);
  const auto dep_sem = semantic_stream(dep_trace.events);
  ASSERT_EQ(sim_sem.size(), dep_sem.size());
  for (std::size_t i = 0; i < sim_sem.size(); ++i)
    EXPECT_EQ(sim_sem[i], dep_sem[i])
        << "divergence at event " << i << ": sim="
        << Tracer::format_line(sim_sem[i])
        << " deployed=" << Tracer::format_line(dep_sem[i]);

  // Sanity on the stream shape: every round produced its skeleton, skips
  // exist (selection pressure), and the drop surfaced no update_lost (the
  // retransmission recovered it before the deadline).
  EXPECT_EQ(count_type(sim_sem, TraceEventType::kRoundStart), kRounds);
  EXPECT_EQ(count_type(sim_sem, TraceEventType::kRoundEnd), kRounds);
  EXPECT_GT(count_type(sim_sem, TraceEventType::kClientSkipped), 0);
  EXPECT_EQ(count_type(dep_sem, TraceEventType::kUpdateLost), 0);

#ifdef ADAFL_SOURCE_DIR
  // Offline oracle: the shipped diff script must agree (exit 0), and must
  // be *able* to disagree — a trace with one event removed fails the diff.
  if (std::system("python3 -c pass >/dev/null 2>&1") == 0) {
    const std::string script =
        std::string(ADAFL_SOURCE_DIR) + "/scripts/trace_diff.py";
    const std::string ok_cmd = "python3 " + script + " " + sim_path + " " +
                               dep_path + " >/dev/null";
    EXPECT_EQ(std::system(ok_cmd.c_str()), 0);

    std::ifstream in(sim_path);
    std::vector<std::string> lines;
    for (std::string l; std::getline(in, l);) lines.push_back(l);
    const std::string cut_path = ::testing::TempDir() + "trace_eq_cut.jsonl";
    std::ofstream out(cut_path, std::ios::trunc);
    for (std::size_t i = 0; i + 2 < lines.size(); ++i) out << lines[i] << "\n";
    out << lines.back() << "\n";  // drop the second-to-last event
    out.close();
    const std::string bad_cmd = "python3 " + script + " " + cut_path + " " +
                                dep_path + " >/dev/null";
    EXPECT_NE(std::system(bad_cmd.c_str()), 0);
    std::remove(cut_path.c_str());
  }
#endif
  std::remove(sim_path.c_str());
  std::remove(dep_path.c_str());
}

}  // namespace
}  // namespace adafl
