#include "net/trace_io.h"

#include <gtest/gtest.h>

#include "tensor/check.h"

#include <cstdio>
#include <sstream>

namespace adafl::net {
namespace {

TEST(TraceIo, ParsesSimpleCsv) {
  std::istringstream in("0,1.0\n10,0.5\n20,0.25\n");
  auto pts = parse_trace(in);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[1].time, 10.0);
  EXPECT_EQ(pts[1].multiplier, 0.5);
}

TEST(TraceIo, SkipsHeaderAndComments) {
  std::istringstream in(
      "time_s,multiplier\n# congestion episode\n0,1.0\n\n5,0.4\n");
  auto pts = parse_trace(in);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[1].multiplier, 0.4);
}

TEST(TraceIo, RejectsMalformedInput) {
  std::istringstream bad1("0,1.0\n5\n");
  EXPECT_THROW(parse_trace(bad1), std::runtime_error);
  std::istringstream bad2("0,1.0\n5,abc\n");
  EXPECT_THROW(parse_trace(bad2), std::runtime_error);
  std::istringstream bad3("0,1.0\n5,1.5\n");  // multiplier > 1
  EXPECT_THROW(parse_trace(bad3), std::runtime_error);
  std::istringstream bad4("5,1.0\n5,0.5\n");  // non-ascending
  EXPECT_THROW(parse_trace(bad4), std::runtime_error);
  std::istringstream empty("# nothing\n");
  EXPECT_THROW(parse_trace(empty), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "adafl_trace.csv";
  save_trace_file(path, {{0.0, 1.0}, {3.5, 0.3}, {9.0, 0.8}});
  auto pts = load_trace_file(path);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[1].time, 3.5);
  EXPECT_EQ(pts[1].multiplier, 0.3);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace_file("/nonexistent/trace.csv"), std::runtime_error);
}

TEST(TraceIo, PointsToTracePreservesSteps) {
  auto trace = trace_from_points({{0.0, 1.0}, {10.0, 0.5}, {20.0, 0.25}},
                                 /*step_s=*/1.0);
  EXPECT_EQ(trace.multiplier(0.0), 1.0);
  EXPECT_EQ(trace.multiplier(9.5), 1.0);
  EXPECT_EQ(trace.multiplier(10.5), 0.5);
  EXPECT_EQ(trace.multiplier(19.5), 0.5);
  EXPECT_EQ(trace.multiplier(25.0), 0.25);
  EXPECT_EQ(trace.multiplier(1e6), 0.25);  // last value holds
}

TEST(TraceIo, SampleThenRebuildRoundTrips) {
  auto original = BandwidthTrace::periodic(7.0, 3.0, 0.4);
  auto pts = sample_trace(original, 0.5, 30.0);
  auto rebuilt = trace_from_points(pts, 0.5);
  for (double t = 0.0; t < 30.0; t += 0.5)
    EXPECT_EQ(rebuilt.multiplier(t), original.multiplier(t)) << "t=" << t;
}

TEST(BandwidthTraceFromSteps, ValidatesInput) {
  EXPECT_THROW(BandwidthTrace::from_steps(0.0, {1.0}), CheckError);
  EXPECT_THROW(BandwidthTrace::from_steps(1.0, {}), CheckError);
  EXPECT_THROW(BandwidthTrace::from_steps(1.0, {1.5}), CheckError);
  EXPECT_THROW(BandwidthTrace::from_steps(1.0, {0.0}), CheckError);
}

TEST(BandwidthTraceFromSteps, LinkIntegration) {
  LinkConfig cfg;
  cfg.up_bw = 1000.0;
  cfg.latency = 0.0;
  Link link(cfg, BandwidthTrace::from_steps(10.0, {1.0, 0.5}),
            BandwidthTrace::constant(), tensor::Rng(1));
  EXPECT_DOUBLE_EQ(link.upload(1000, 5.0).duration, 1.0);
  EXPECT_DOUBLE_EQ(link.upload(1000, 15.0).duration, 2.0);
}

}  // namespace
}  // namespace adafl::net
