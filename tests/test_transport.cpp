// Transport layer: loopback pair semantics, real TCP sockets on 127.0.0.1,
// and the reconnect backoff schedule. Focus is on the failure-path contract
// (timeouts return nullopt, EOF flips closed(), dead ports fail fast) that
// the session layer's resilience is built on.
#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>

#include "net/transport/loopback.h"
#include "net/transport/tcp.h"

namespace adafl::net::transport {
namespace {

using std::chrono::milliseconds;

Frame ping_frame(std::uint32_t round, std::uint32_t client_id) {
  Frame f;
  f.type = MsgType::kPing;
  f.round = round;
  f.client_id = client_id;
  return f;
}

TEST(Backoff, ExponentialBoundedDelays) {
  BackoffPolicy b;
  b.initial = milliseconds(100);
  b.max = milliseconds(450);
  b.multiplier = 2.0;
  EXPECT_EQ(b.delay(0), milliseconds(100));
  EXPECT_EQ(b.delay(1), milliseconds(200));
  EXPECT_EQ(b.delay(2), milliseconds(400));
  EXPECT_EQ(b.delay(3), milliseconds(450));  // clamped
  EXPECT_EQ(b.delay(30), milliseconds(450));
}

TEST(Backoff, ExtremeAttemptsSaturateAtMax) {
  BackoffPolicy b;
  b.initial = milliseconds(100);
  b.max = milliseconds(450);
  b.multiplier = 2.0;
  // pow(2, 64+) overflows double range well before these; the delay must
  // saturate at max instead of wrapping through an undefined int64 cast.
  EXPECT_EQ(b.delay(64), milliseconds(450));
  EXPECT_EQ(b.delay(1024), milliseconds(450));
  EXPECT_EQ(b.delay(std::numeric_limits<int>::max()), milliseconds(450));
}

TEST(Backoff, ZeroInitialNeverGoesNegativeOrNaN) {
  BackoffPolicy b;
  b.initial = milliseconds(0);
  b.max = milliseconds(450);
  b.multiplier = 2.0;
  EXPECT_EQ(b.delay(0), milliseconds(0));
  EXPECT_EQ(b.delay(5), milliseconds(0));
  // 0 * inf = NaN in double space; it must clamp to max, not cast NaN.
  EXPECT_EQ(b.delay(2048), milliseconds(450));
}

TEST(Loopback, SendRecvBothDirections) {
  auto [a, b] = make_loopback_pair();
  Frame f = ping_frame(3, 1);
  f.payload = {9, 8, 7};
  EXPECT_TRUE(a->send(f));
  const auto got = b->recv(milliseconds(500));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, MsgType::kPing);
  EXPECT_EQ(got->round, 3u);
  EXPECT_EQ(got->payload, f.payload);

  EXPECT_TRUE(b->send(ping_frame(4, 2)));
  const auto back = a->recv(milliseconds(500));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->round, 4u);
  EXPECT_EQ(a->peer(), "loopback");
}

TEST(Loopback, RecvTimesOutWhenIdle) {
  auto [a, b] = make_loopback_pair();
  EXPECT_FALSE(a->recv(milliseconds(0)).has_value());
  EXPECT_FALSE(a->recv(milliseconds(20)).has_value());
  EXPECT_FALSE(a->closed());
  (void)b;
}

TEST(Loopback, CloseDrainsInFlightFramesThenEof) {
  auto [a, b] = make_loopback_pair();
  EXPECT_TRUE(a->send(ping_frame(1, 0)));
  EXPECT_TRUE(a->send(ping_frame(2, 0)));
  a->close();
  // Frames already in flight still arrive...
  EXPECT_FALSE(b->closed());
  EXPECT_EQ(b->recv(milliseconds(100))->round, 1u);
  EXPECT_EQ(b->recv(milliseconds(100))->round, 2u);
  // ...then the connection reads as closed and recv fails fast.
  EXPECT_TRUE(b->closed());
  EXPECT_FALSE(b->recv(milliseconds(0)).has_value());
  // Sending into a closed pipe fails from either end.
  EXPECT_FALSE(b->send(ping_frame(3, 0)));
  EXPECT_FALSE(a->send(ping_frame(3, 0)));
}

TEST(Tcp, EphemeralListenerRoundTrip) {
  TcpListener listener(0);
  EXPECT_GT(listener.port(), 0);

  std::unique_ptr<TcpTransport> server_side;
  std::thread acceptor(
      [&] { server_side = listener.accept(milliseconds(2000)); });
  auto client = TcpTransport::connect("127.0.0.1", listener.port(),
                                      milliseconds(2000));
  acceptor.join();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server_side, nullptr);
  EXPECT_FALSE(client->peer().empty());
  EXPECT_FALSE(server_side->peer().empty());

  // Small frame client -> server.
  Frame f = ping_frame(5, 2);
  f.payload = {1, 2, 3, 4};
  EXPECT_TRUE(client->send(f));
  auto got = server_side->recv(milliseconds(2000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, f.payload);

  // Large frame server -> client (bigger than any single socket buffer, so
  // partial writes/reads and reassembly are exercised).
  Frame big;
  big.type = MsgType::kModel;
  big.round = 1;
  big.payload.resize(3 * 1024 * 1024);
  for (std::size_t i = 0; i < big.payload.size(); ++i)
    big.payload[i] = static_cast<std::uint8_t>(i * 131 + 17);
  std::thread sender([&] { EXPECT_TRUE(server_side->send(big)); });
  auto rx = client->recv(milliseconds(5000));
  sender.join();
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(rx->payload, big.payload);
}

TEST(Tcp, RecvTimeoutThenPeerCloseBecomesEof) {
  TcpListener listener(0);
  std::unique_ptr<TcpTransport> server_side;
  std::thread acceptor(
      [&] { server_side = listener.accept(milliseconds(2000)); });
  auto client = TcpTransport::connect("127.0.0.1", listener.port(),
                                      milliseconds(2000));
  acceptor.join();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server_side, nullptr);

  // Quiet peer: recv times out without flipping closed().
  EXPECT_FALSE(client->recv(milliseconds(30)).has_value());
  EXPECT_FALSE(client->closed());

  // Peer hangs up: recv observes EOF and the transport reads closed.
  server_side->close();
  EXPECT_FALSE(client->recv(milliseconds(2000)).has_value());
  EXPECT_TRUE(client->closed());
  EXPECT_FALSE(client->send(ping_frame(1, 0)));
}

TEST(Tcp, ConnectToDeadPortFailsFast) {
  // Bind an ephemeral port, then close it so nothing listens there.
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  auto t = TcpTransport::connect("127.0.0.1", dead_port, milliseconds(1000));
  EXPECT_EQ(t, nullptr);
}

TEST(Tcp, SendAfterLocalCloseFails) {
  TcpListener listener(0);
  std::unique_ptr<TcpTransport> server_side;
  std::thread acceptor(
      [&] { server_side = listener.accept(milliseconds(2000)); });
  auto client = TcpTransport::connect("127.0.0.1", listener.port(),
                                      milliseconds(2000));
  acceptor.join();
  ASSERT_NE(client, nullptr);
  client->close();
  EXPECT_TRUE(client->closed());
  EXPECT_FALSE(client->send(ping_frame(1, 0)));
  EXPECT_FALSE(client->recv(milliseconds(0)).has_value());
}

}  // namespace
}  // namespace adafl::net::transport
