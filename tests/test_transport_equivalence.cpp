// Integration: pushing every DGC message through the real byte-level wire
// format must not change training at all — the simulation's in-memory
// messages and actual serialized transport are equivalent, and a deployed
// session run over loopback transports reproduces the simulator bitwise.
#include <gtest/gtest.h>

#include "compress/dgc.h"
#include "compress/wire.h"
#include "tensor/rng.h"

#include "deployed_test_util.h"

namespace adafl::compress {
namespace {

using tensor::Rng;

TEST(TransportEquivalence, DgcStreamSurvivesSerialization) {
  // Two identical DGC compressors fed the same gradients; one side's
  // messages are round-tripped through bytes. Decoded results must match
  // exactly, message by message.
  DgcConfig cfg;
  cfg.ratio = 16.0;
  cfg.momentum = 0.9f;
  cfg.momentum_correction = true;
  cfg.clip_norm = 3.0;
  DgcCompressor direct(256, cfg);
  DgcCompressor via_wire(256, cfg);
  Rng rng(7);
  for (int round = 0; round < 25; ++round) {
    std::vector<float> g(256);
    for (auto& v : g) v = static_cast<float>(rng.normal());
    auto e1 = direct.compress(g);
    auto e2 = via_wire.compress(g);
    auto restored = deserialize(serialize(e2));
    EXPECT_EQ(e1.decode(), restored.decode()) << "round " << round;
  }
  EXPECT_EQ(direct.residual_norm(), via_wire.residual_norm());
}

TEST(TransportEquivalence, WireBytesMatchSimulatedCharges) {
  // The bytes the simulators charge (wire_bytes) equal the real buffer
  // size for every codec kind, so simulated communication cost is exactly
  // what a deployed run puts on the socket.
  Rng rng(9);
  std::vector<float> g(512);
  for (auto& v : g) v = static_cast<float>(rng.normal());
  IdentityCodec ident;
  TopKCodec topk(8.0);
  QsgdCodec qsgd(16);
  TernaryCodec ternary;
  for (Codec* c :
       std::initializer_list<Codec*>{&ident, &topk, &qsgd, &ternary}) {
    auto e = c->encode(g, rng);
    EXPECT_EQ(static_cast<std::int64_t>(serialize(e).size()), e.wire_bytes)
        << c->name();
  }
}

}  // namespace
}  // namespace adafl::compress

namespace adafl::net::transport {
namespace {

TEST(TransportEquivalence, LoopbackDeployedMatchesSimulatorBitwise) {
  // The flagship invariant of the deployed subsystem: a ServerSession
  // driving real ClientSessions through framed loopback transports (the
  // exact bytes a socket would carry) converges to the same global weights,
  // bit for bit, as AdaFlSyncTrainer with the same seed and config.
  const auto spec = testutil::small_task_spec();
  const auto client = testutil::small_client_config();
  const auto params = testutil::small_params();
  const int rounds = 3;

  const auto sim = testutil::run_simulator(spec, client, params, rounds);
  const auto dep =
      testutil::run_deployed_loopback(spec, client, params, rounds);

  ASSERT_EQ(dep.global.size(), sim.global.size());
  EXPECT_EQ(dep.global, sim.global);  // bitwise: float == float

  // The accuracy curve is derived from the weights, so it must match too.
  ASSERT_EQ(dep.log.records.size(), sim.log.records.size());
  for (std::size_t i = 0; i < sim.log.records.size(); ++i) {
    EXPECT_EQ(dep.log.records[i].test_accuracy,
              sim.log.records[i].test_accuracy)
        << "round " << sim.log.records[i].round;
  }

  // Selection and compression decisions must be identical as well.
  EXPECT_EQ(dep.stats.selected_updates, sim.stats.selected_updates);
  EXPECT_EQ(dep.stats.skipped_clients, sim.stats.skipped_clients);
  EXPECT_EQ(dep.stats.min_ratio_used, sim.stats.min_ratio_used);
  EXPECT_EQ(dep.stats.max_ratio_used, sim.stats.max_ratio_used);

  // Every client terminated via SHUTDOWN with all rounds trained.
  for (const auto& st : dep.clients) {
    EXPECT_TRUE(st.completed);
    EXPECT_EQ(st.rounds_trained, rounds);
    EXPECT_EQ(st.reconnects, 0);
  }
}

}  // namespace
}  // namespace adafl::net::transport
