// Integration: pushing every DGC message through the real byte-level wire
// format must not change training at all — the simulation's in-memory
// messages and actual serialized transport are equivalent.
#include <gtest/gtest.h>

#include "compress/dgc.h"
#include "compress/wire.h"
#include "tensor/rng.h"

namespace adafl::compress {
namespace {

using tensor::Rng;

TEST(TransportEquivalence, DgcStreamSurvivesSerialization) {
  // Two identical DGC compressors fed the same gradients; one side's
  // messages are round-tripped through bytes. Decoded results must match
  // exactly, message by message.
  DgcConfig cfg;
  cfg.ratio = 16.0;
  cfg.momentum = 0.9f;
  cfg.momentum_correction = true;
  cfg.clip_norm = 3.0;
  DgcCompressor direct(256, cfg);
  DgcCompressor via_wire(256, cfg);
  Rng rng(7);
  for (int round = 0; round < 25; ++round) {
    std::vector<float> g(256);
    for (auto& v : g) v = static_cast<float>(rng.normal());
    auto e1 = direct.compress(g);
    auto e2 = via_wire.compress(g);
    auto restored = deserialize(serialize(e2));
    EXPECT_EQ(e1.decode(), restored.decode()) << "round " << round;
  }
  EXPECT_EQ(direct.residual_norm(), via_wire.residual_norm());
}

TEST(TransportEquivalence, WireBytesMatchSimulatedCharges) {
  // The bytes the simulators charge (wire_bytes) equal the real buffer
  // size for the formats the FL trainers use (identity and top-k).
  Rng rng(9);
  std::vector<float> g(512);
  for (auto& v : g) v = static_cast<float>(rng.normal());
  IdentityCodec ident;
  TopKCodec topk(8.0);
  for (Codec* c : std::initializer_list<Codec*>{&ident, &topk}) {
    auto e = c->encode(g, rng);
    EXPECT_EQ(static_cast<std::int64_t>(serialize(e).size()), e.wire_bytes)
        << c->name();
  }
}

}  // namespace
}  // namespace adafl::compress
