// The FEC-coded datagram transport, bottom to top: datagram header codec,
// fragment/reassemble round trips, Reed-Solomon repair of lost datagrams,
// deterministic datagram-level chaos, and the tier-1 oracle — a deployed
// session over UDP loopback under scripted loss must finish bitwise- and
// trace-identical to the simulator with ZERO retransmits and ZERO
// reconnects, because parity absorbs the loss with no round trips.
#include <gtest/gtest.h>
#include <poll.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "deployed_test_util.h"
#include "metrics/trace.h"
#include "net/transport/faulty.h"
#include "net/transport/frame.h"
#include "net/transport/udp.h"

namespace adafl {
namespace {

using namespace net::transport;
using metrics::TraceEvent;
using metrics::TraceEventType;
using metrics::Tracer;

constexpr std::uint64_t kSeed = 0x0DD5EED5u;

Frame test_frame(std::size_t payload_bytes, std::uint32_t round = 3) {
  Frame f;
  f.type = MsgType::kUpdate;
  f.round = round;
  f.client_id = 7;
  f.payload.resize(payload_bytes);
  std::mt19937_64 rng(kSeed ^ payload_bytes);
  for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng());
  return f;
}

UdpFecConfig small_cfg(FecStats* stats = nullptr) {
  UdpFecConfig cfg;
  cfg.data_shards = 4;
  cfg.parity_shards = 2;
  cfg.max_shard_bytes = 64;
  cfg.stats = stats;
  return cfg;
}

// --- Header codec ----------------------------------------------------------

TEST(DatagramCodec, HeaderRoundTrip) {
  DatagramHeader h;
  h.shard = 5;
  h.k = 6;
  h.r = 2;
  h.frame_seq = 0x0123456789ABCDEFull;
  h.gen_index = 3;
  h.gen_count = 9;
  h.frame_len = 100000;
  h.gen_off = 4096;
  h.shard_len = 11;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  const auto wire = encode_datagram(h, payload);
  ASSERT_EQ(wire.size(), kDatagramHeaderBytes + payload.size());

  const auto got = parse_datagram(wire);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->shard, h.shard);
  EXPECT_EQ(got->k, h.k);
  EXPECT_EQ(got->r, h.r);
  EXPECT_EQ(got->frame_seq, h.frame_seq);
  EXPECT_EQ(got->gen_index, h.gen_index);
  EXPECT_EQ(got->gen_count, h.gen_count);
  EXPECT_EQ(got->frame_len, h.frame_len);
  EXPECT_EQ(got->gen_off, h.gen_off);
  EXPECT_EQ(got->shard_len, h.shard_len);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         wire.begin() + static_cast<long>(kDatagramHeaderBytes)));
}

TEST(DatagramCodec, RejectsCorruptionAndBadStructure) {
  DatagramHeader h;
  h.shard = 0;
  h.k = 4;
  h.r = 2;
  h.frame_seq = 42;
  h.gen_count = 2;
  h.frame_len = 200;
  h.gen_off = 0;
  h.shard_len = 8;
  const std::vector<std::uint8_t> payload(8, 0xAB);
  const auto good = encode_datagram(h, payload);
  ASSERT_TRUE(parse_datagram(good).has_value());

  // Truncation: every proper prefix is rejected.
  for (std::size_t len = 0; len < good.size(); ++len)
    EXPECT_FALSE(parse_datagram(std::span(good.data(), len)).has_value())
        << "accepted prefix of length " << len;

  // Any single flipped bit dies on the CRC (or magic/version first).
  std::mt19937_64 rng(kSeed);
  for (int i = 0; i < 500; ++i) {
    auto bad = good;
    bad[rng() % bad.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    EXPECT_FALSE(parse_datagram(bad).has_value());
  }

  // Structurally invalid headers with VALID CRCs (encode computes the CRC
  // over whatever the header says) must still be rejected.
  auto rejects = [&](DatagramHeader bad_h, std::size_t payload_len) {
    const std::vector<std::uint8_t> p(payload_len, 0x11);
    EXPECT_FALSE(parse_datagram(encode_datagram(bad_h, p)).has_value());
  };
  DatagramHeader b = h;
  b.k = 0;  // no data shards
  rejects(b, 8);
  b = h;
  b.shard = 6;  // index == n
  rejects(b, 8);
  b = h;
  b.gen_count = 0;
  rejects(b, 8);
  b = h;
  b.gen_index = 2;  // == gen_count
  rejects(b, 8);
  b = h;
  b.gen_count = kMaxGenerationsPerFrame + 1;
  rejects(b, 8);
  b = h;
  b.frame_len = 2;  // below the frame header minimum
  rejects(b, 8);
  b = h;
  b.gen_off = 200;  // == frame_len
  rejects(b, 8);
  b = h;
  b.shard_len = 0;
  rejects(b, 0);
  b = h;
  b.k = 4;
  b.shard_len = 100;  // (k-1)*shard_len >= frame_len - gen_off
  rejects(b, 100);
}

// --- Fragment / reassemble round trips -------------------------------------

TEST(UdpFragmentation, RoundTripAcrossSizes) {
  const UdpFecConfig cfg = small_cfg();
  FrameFragmenter frag(cfg);
  FrameReassembler reasm(cfg);
  // Sub-shard, exact shard, exact generation, multi-generation, and
  // off-by-one around each boundary. (Frame encoding adds its own header.)
  const std::size_t sizes[] = {0,   1,   63,  64,  65,   255,  256,
                               257, 512, 513, 999, 4096, 10000};
  for (const std::size_t sz : sizes) {
    const Frame f = test_frame(sz);
    const auto dgrams = frag.fragment(f);
    ASSERT_FALSE(dgrams.empty());
    for (const auto& d : dgrams) reasm.offer(d);
    const auto got = reasm.next();
    ASSERT_TRUE(got.has_value()) << "size " << sz;
    EXPECT_EQ(got->payload, f.payload);
    EXPECT_EQ(got->round, f.round);
    EXPECT_EQ(got->client_id, f.client_id);
    EXPECT_EQ(static_cast<int>(got->type), static_cast<int>(f.type));
    EXPECT_FALSE(reasm.next().has_value());
  }
}

TEST(UdpFragmentation, ParityBytesAccounted) {
  FecStats stats;
  const UdpFecConfig cfg = small_cfg(&stats);
  FrameFragmenter frag(cfg);
  const auto dgrams = frag.fragment(test_frame(1000));
  // ceil over generations: every generation ships its r parity datagrams.
  std::int64_t parity = 0;
  for (const auto& d : dgrams) {
    const auto h = parse_datagram(d);
    ASSERT_TRUE(h.has_value());
    if (h->shard >= h->k) parity += static_cast<std::int64_t>(d.size());
  }
  EXPECT_GT(parity, 0);
  EXPECT_EQ(stats.parity_bytes.load(), parity);
  EXPECT_EQ(stats.datagrams_sent.load(),
            static_cast<std::int64_t>(dgrams.size()));
}

TEST(UdpFragmentation, AnyLossWithinParityBudgetRepairs) {
  std::mt19937_64 rng(kSeed ^ 11);
  FecStats stats;
  const UdpFecConfig cfg = small_cfg(&stats);
  FrameFragmenter frag(cfg);
  FrameReassembler reasm(cfg);
  for (int trial = 0; trial < 200; ++trial) {
    const Frame f = test_frame(700 + trial);  // ~3 generations
    auto dgrams = frag.fragment(f);
    // Group indices by generation, drop up to r from each.
    std::map<std::uint32_t, std::vector<std::size_t>> by_gen;
    for (std::size_t i = 0; i < dgrams.size(); ++i)
      by_gen[parse_datagram(dgrams[i])->gen_index].push_back(i);
    std::vector<bool> drop(dgrams.size(), false);
    for (auto& [gen, idx] : by_gen) {
      std::shuffle(idx.begin(), idx.end(), rng);
      const std::size_t e = rng() % (static_cast<std::size_t>(
                                         cfg.parity_shards) + 1);
      for (std::size_t i = 0; i < e && i < idx.size(); ++i)
        drop[idx[i]] = true;
    }
    for (std::size_t i = 0; i < dgrams.size(); ++i)
      if (!drop[i]) reasm.offer(dgrams[i]);
    const auto got = reasm.next();
    ASSERT_TRUE(got.has_value()) << "trial " << trial;
    ASSERT_EQ(got->payload, f.payload) << "trial " << trial;
  }
  EXPECT_GT(stats.datagrams_repaired.load(), 0);
  EXPECT_EQ(stats.datagrams_lost.load(), stats.datagrams_repaired.load());
  EXPECT_EQ(stats.unrecoverable_generations.load(), 0);
  EXPECT_EQ(stats.frames_dropped.load(), 0);
}

TEST(UdpFragmentation, LossBeyondBudgetIsUnrecoverableNeverCorrupt) {
  FecStats stats;
  UdpFecConfig cfg = small_cfg(&stats);
  // One reassembly slot: the next frame must evict the stuck one.
  cfg.max_assemblies = 1;
  FrameFragmenter frag(cfg);
  FrameReassembler reasm(cfg);

  const Frame f = test_frame(200);  // one generation of 4 data + 2 parity
  auto dgrams = frag.fragment(f);
  ASSERT_GE(dgrams.size(), 6u);
  // Deliver only k-1 shards of the first generation: under the k floor.
  for (std::size_t i = 3; i < dgrams.size(); ++i) reasm.offer(dgrams[i]);
  EXPECT_FALSE(reasm.next().has_value());

  // The incomplete frame is evicted once newer frames need the slot; the
  // failed generation is counted, and the NEXT send of the same frame (the
  // session's retransmit-nudge fallback) still delivers cleanly.
  for (int i = 0; i < 3; ++i) {
    const Frame filler = test_frame(50, static_cast<std::uint32_t>(10 + i));
    for (const auto& d : frag.fragment(filler)) reasm.offer(d);
    ASSERT_TRUE(reasm.next().has_value());
  }
  EXPECT_GE(stats.unrecoverable_generations.load(), 1);
  EXPECT_GE(stats.frames_dropped.load(), 1);

  const auto resent = frag.fragment(f);  // new frame_seq, same content
  for (const auto& d : resent) reasm.offer(d);
  const auto got = reasm.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, f.payload);
}

TEST(UdpFragmentation, DuplicatesAndReorderAreHarmless) {
  std::mt19937_64 rng(kSeed ^ 13);
  const UdpFecConfig cfg = small_cfg();
  FrameFragmenter frag(cfg);
  FrameReassembler reasm(cfg);
  for (int trial = 0; trial < 100; ++trial) {
    const Frame f = test_frame(600);
    auto dgrams = frag.fragment(f);
    auto doubled = dgrams;
    doubled.insert(doubled.end(), dgrams.begin(), dgrams.end());
    std::shuffle(doubled.begin(), doubled.end(), rng);
    for (const auto& d : doubled) reasm.offer(d);
    const auto got = reasm.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload, f.payload);
    // The duplicates of an already-delivered frame must not re-deliver.
    EXPECT_FALSE(reasm.next().has_value());
    for (const auto& d : dgrams) reasm.offer(d);
    EXPECT_FALSE(reasm.next().has_value());
  }
}

// --- UdpTransport over loopback links --------------------------------------

TEST(UdpTransportLoopback, BidirectionalFrames) {
  auto [a, b] = make_datagram_loopback_pair();
  const UdpFecConfig cfg = small_cfg();
  UdpTransport ta(std::move(a), cfg);
  UdpTransport tb(std::move(b), cfg);

  const Frame f1 = test_frame(5000, 1);
  const Frame f2 = test_frame(77, 2);
  ASSERT_TRUE(ta.send(f1));
  ASSERT_TRUE(tb.send(f2));

  const auto got1 = tb.recv(std::chrono::milliseconds(1000));
  ASSERT_TRUE(got1.has_value());
  EXPECT_EQ(got1->payload, f1.payload);
  const auto got2 = ta.recv(std::chrono::milliseconds(1000));
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(got2->payload, f2.payload);

  // Nonblocking poll with nothing pending.
  EXPECT_FALSE(ta.recv(std::chrono::milliseconds(0)).has_value());

  tb.close();
  EXPECT_TRUE(tb.closed());
  EXPECT_FALSE(ta.recv(std::chrono::milliseconds(10)).has_value());
}

// --- Deterministic datagram chaos ------------------------------------------

// Same plan + same seed => identical drop/deliver decisions, independent of
// timing: the fault stream advances on the SEND path only.
TEST(FaultyDatagramLink, SameSeedSameDropPattern) {
  auto run_once = [](std::uint64_t seed) {
    auto [a, b] = make_datagram_loopback_pair();
    auto faulty = std::make_unique<FaultyDatagramLink>(
        std::move(a), DatagramFaultPlan::iid(0.3, seed));
    FaultyDatagramLink* fp = faulty.get();
    std::vector<std::size_t> delivered_sizes;
    std::mt19937_64 rng(kSeed ^ 17);
    for (int i = 0; i < 500; ++i) {
      std::vector<std::uint8_t> d(1 + rng() % 64);
      for (auto& x : d) x = static_cast<std::uint8_t>(rng());
      fp->send(d);
      while (auto got = b->recv(std::chrono::milliseconds(0)))
        delivered_sizes.push_back(got->size());
    }
    return std::make_pair(fp->dropped(), delivered_sizes);
  };
  const auto [drop1, sizes1] = run_once(99);
  const auto [drop2, sizes2] = run_once(99);
  const auto [drop3, sizes3] = run_once(100);
  EXPECT_GT(drop1, 50u);  // 30% of 500
  EXPECT_EQ(drop1, drop2);
  EXPECT_EQ(sizes1, sizes2);
  EXPECT_NE(sizes1, sizes3);  // a different seed gives a different pattern
}

TEST(FaultyDatagramLink, BurstLossComesInBursts) {
  // Gilbert-Elliott with mean burst 4 at 20% loss: the number of distinct
  // loss runs must be well below the count an i.i.d. pattern would produce.
  auto [a, b] = make_datagram_loopback_pair();
  auto faulty = std::make_unique<FaultyDatagramLink>(
      std::move(a), DatagramFaultPlan::burst(0.2, 4.0, 7));
  const int n = 5000;
  std::vector<std::uint8_t> d(8, 0x55);
  int lost = 0, runs = 0;
  bool in_run = false;
  std::uint64_t prev_dropped = 0;
  for (int i = 0; i < n; ++i) {
    faulty->send(d);
    const bool dropped_now = faulty->dropped() > prev_dropped;
    prev_dropped = faulty->dropped();
    lost += dropped_now ? 1 : 0;
    if (dropped_now && !in_run) ++runs;
    in_run = dropped_now;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.2, 0.05);
  // i.i.d. 20% over 5000 sends would produce ~800 runs; mean-4 bursts ~250.
  EXPECT_LT(runs, 500);
  EXPECT_GT(runs, 50);
}

// --- The tier-1 oracle: deployed UDP == simulator under loss ---------------

bool is_semantic(const TraceEvent& e) {
  return e.type < TraceEventType::kFrameTx;
}

std::vector<TraceEvent> semantic_stream(const std::vector<TraceEvent>& evs) {
  std::vector<TraceEvent> out;
  for (TraceEvent e : evs) {
    if (!is_semantic(e)) continue;
    e.t = 0.0;
    out.push_back(e);
  }
  return out;
}

int count_type(const std::vector<TraceEvent>& evs, TraceEventType t) {
  int n = 0;
  for (const auto& e : evs) n += e.type == t ? 1 : 0;
  return n;
}

metrics::RunManifest udp_manifest(const char* producer,
                                  const cli::TaskSpec& spec, int rounds) {
  metrics::RunManifest m;
  m.producer = producer;
  m.algo = "adafl-sync";
  m.seed = spec.seed;
  m.rounds = rounds;
  m.clients = spec.clients;
  return m;
}

void run_udp_equivalence(const DatagramFaultPlan& plan,
                         bool expect_zero_retransmits) {
  constexpr int kRounds = 4;
  const auto spec = testutil::small_task_spec();
  const auto client = testutil::small_client_config();
  const auto params = testutil::small_params();

  // Seed-qualified paths: ctest runs each gtest case as its own process,
  // so the two equivalence cases can execute concurrently and must not
  // share trace files.
  const std::string tag = "udp_eq_" + std::to_string(plan.seed);
  const std::string sim_path = ::testing::TempDir() + tag + "_sim.jsonl";
  const std::string dep_path = ::testing::TempDir() + tag + "_dep.jsonl";

  Tracer sim_tracer;
  sim_tracer.open(sim_path, udp_manifest("flsim", spec, kRounds));
  const auto sim = testutil::run_simulator(spec, client, params, kRounds,
                                           &sim_tracer);
  sim_tracer.close();

  // k=8/r=8 parity budget: at 10% i.i.d. loss the chance of any generation
  // losing more than 8 of its 16 datagrams is ~1e-5 — the run must complete
  // on FEC repair alone, with the retransmit path never taken.
  FecStats server_stats;
  FecStats client_stats;
  UdpFecConfig fec;
  fec.data_shards = 8;
  fec.parity_shards = 8;
  fec.max_shard_bytes = 700;  // several generations per MODEL/UPDATE frame
  fec.stats = &client_stats;

  Tracer dep_tracer;
  // Bind the hooks exactly as the CLIs do: deployed-only transport events,
  // round 0 / client -1 (the reassembler has no session context).
  fec.hooks.on_datagram_lost = [&dep_tracer](std::int64_t bytes) {
    dep_tracer.record(metrics::ev_datagram_lost(0, -1, bytes, 0.0));
  };
  fec.hooks.on_fec_repair = [&dep_tracer](int, std::int64_t bytes) {
    dep_tracer.record(metrics::ev_fec_repair(0, -1, bytes, 0.0));
  };
  dep_tracer.open(dep_path, udp_manifest("deployed", spec, kRounds));
  // A 5 s nudge: generous enough that CPU starvation under a fully parallel
  // ctest run can't fire a retransmit and break the zero-retransmit
  // assertion — losses must be absorbed by FEC repair alone either way.
  const auto dep = testutil::run_deployed_udp_loopback(
      spec, client, params, kRounds, fec, &dep_tracer,
      [&plan](int id, std::unique_ptr<DatagramLink> link)
          -> std::unique_ptr<DatagramLink> {
        DatagramFaultPlan p = plan;
        p.seed += static_cast<std::uint64_t>(id) * 7919;
        return std::make_unique<FaultyDatagramLink>(std::move(link), p);
      },
      &server_stats, std::chrono::milliseconds(5000));
  dep_tracer.close();

  // Bitwise global weights: the deployed UDP path is the simulator.
  ASSERT_EQ(sim.global, dep.global);

  // Losses happened and were repaired by parity, not by round trips.
  EXPECT_GT(server_stats.datagrams_repaired.load(), 0);
  EXPECT_EQ(server_stats.unrecoverable_generations.load(), 0);
  for (const auto& c : dep.clients) {
    EXPECT_TRUE(c.completed);
    EXPECT_EQ(c.reconnects, 0);
  }
  EXPECT_EQ(dep.log.ledger.total_reconnects(), 0);
  if (expect_zero_retransmits) {
    EXPECT_EQ(dep.log.ledger.total_retransmitted_bytes(), 0);
  }

  // Semantic trace equality, exactly as scripts/trace_diff.py computes it;
  // datagram_lost/fec_repair exist only on the deployed side and are
  // excluded along with the other transport events.
  const auto sim_trace = metrics::read_trace_file(sim_path);
  const auto dep_trace = metrics::read_trace_file(dep_path);
  EXPECT_GT(count_type(dep_trace.events, TraceEventType::kFecRepair), 0);
  const auto sim_sem = semantic_stream(sim_trace.events);
  const auto dep_sem = semantic_stream(dep_trace.events);
  ASSERT_EQ(sim_sem.size(), dep_sem.size());
  for (std::size_t i = 0; i < sim_sem.size(); ++i)
    ASSERT_EQ(sim_sem[i], dep_sem[i])
        << "divergence at event " << i << ": sim="
        << Tracer::format_line(sim_sem[i])
        << " deployed=" << Tracer::format_line(dep_sem[i]);

  std::remove(sim_path.c_str());
  std::remove(dep_path.c_str());
}

TEST(UdpDeployedEquivalence, TenPercentIidLossZeroRetransmits) {
  run_udp_equivalence(DatagramFaultPlan::iid(0.10, 4242),
                      /*expect_zero_retransmits=*/true);
}

TEST(UdpDeployedEquivalence, BurstLossWithinParityBudget) {
  // 5% loss in mean-2 bursts: comfortably inside the r=8 budget; semantic
  // equality and zero reconnects must hold (a rare >8 burst may nudge a
  // retransmit, which the trace comparison rightly ignores).
  run_udp_equivalence(DatagramFaultPlan::burst(0.05, 2.0, 31337),
                      /*expect_zero_retransmits=*/false);
}

// --- Real sockets: UdpListener + UdpSocketLink smoke ------------------------

TEST(UdpRealSocket, ListenerAcceptEchoAndStats) {
  FecStats stats;
  UdpFecConfig cfg = small_cfg(&stats);
  UdpListener listener(0, cfg);
  ASSERT_GT(listener.port(), 0);

  std::atomic<bool> ok{false};
  std::thread server([&] {
    auto t = listener.accept(std::chrono::milliseconds(3000));
    if (!t) return;
    auto f = t->recv(std::chrono::milliseconds(3000));
    if (!f) return;
    f->round += 1;
    if (!t->send(*f)) return;
    // Hold the connection until the client has read the echo.
    const auto fin = t->recv(std::chrono::milliseconds(3000));
    ok.store(fin.has_value() && fin->type == MsgType::kPing);
  });

  auto link = UdpSocketLink::connect("127.0.0.1", listener.port());
  ASSERT_NE(link, nullptr);
  UdpTransport client(std::move(link), cfg);
  const Frame f = test_frame(3000, 5);
  ASSERT_TRUE(client.send(f));
  const auto echo = client.recv(std::chrono::milliseconds(3000));
  ASSERT_TRUE(echo.has_value());
  EXPECT_EQ(echo->round, f.round + 1);
  EXPECT_EQ(echo->payload, f.payload);
  Frame fin;
  fin.type = MsgType::kPing;
  ASSERT_TRUE(client.send(fin));

  server.join();
  EXPECT_TRUE(ok.load());
  listener.close();
  EXPECT_TRUE(listener.closed());
  EXPECT_GT(stats.datagrams_sent.load(), 0);
  EXPECT_GT(stats.parity_bytes.load(), 0);
}

TEST(UdpRealSocket, ConnectToUnresolvableHostFails) {
  EXPECT_EQ(UdpSocketLink::connect("definitely.invalid.adafl", 1), nullptr);
}

TEST(UdpRealSocket, MuxEvictsDroppedPeersUnderChurn) {
  // ISSUE 8 satellite 3: closing a peer's transport retires its address-map
  // entry after a bounded tombstone grace window, so a long-lived listener
  // facing connection churn does not grow its map without bound.
  FecStats stats;
  UdpFecConfig cfg = small_cfg(&stats);
  UdpListener listener(0, cfg);
  const int kChurn = 100;  // well past the grace window
  // Client sockets stay open for the whole churn so the kernel cannot hand
  // a later dial an ephemeral port that is still inside the tombstone
  // window (a tombstone suppresses traffic from its address by design).
  std::vector<std::unique_ptr<UdpTransport>> clients;
  for (int i = 0; i < kChurn; ++i) {
    auto link = UdpSocketLink::connect("127.0.0.1", listener.port());
    ASSERT_NE(link, nullptr);
    clients.push_back(std::make_unique<UdpTransport>(std::move(link), cfg));
    ASSERT_TRUE(clients.back()->send(test_frame(9000 + i, 1)));
    auto t = listener.accept(std::chrono::milliseconds(3000));
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->recv(std::chrono::milliseconds(3000)).has_value());
    t->close();  // drops the peer: entry becomes a bounded tombstone
  }
  // Live entries: zero. Tombstoned entries: at most the grace window.
  EXPECT_LE(listener.peer_count(), 70u);
  listener.close();
}

TEST(UdpRealSocket, ZeroTimeoutAcceptDrainsReadableFd) {
  // The event-loop integration contract: flserver watches listener.fd() in
  // the epoll loop and, on readability, drains new peers with
  // accept(0ms). A zero-timeout accept must therefore do one non-blocking
  // pump (discovering any sender whose datagram is sitting in the socket
  // buffer) instead of returning before ever reading the socket.
  FecStats stats;
  UdpFecConfig cfg = small_cfg(&stats);
  UdpListener listener(0, cfg);
  ASSERT_GE(listener.fd(), 0);

  // Nothing pending: immediate nullptr, no blocking.
  EXPECT_EQ(listener.accept(std::chrono::milliseconds(0)), nullptr);

  auto link = UdpSocketLink::connect("127.0.0.1", listener.port());
  ASSERT_NE(link, nullptr);
  UdpTransport client(std::move(link), cfg);
  ASSERT_TRUE(client.send(test_frame(64, 100)));

  // Wait for readability exactly as the event loop would, then drain with
  // zero timeout.
  struct pollfd pfd{};
  pfd.fd = listener.fd();
  pfd.events = POLLIN;
  ASSERT_GT(::poll(&pfd, 1, 3000), 0);
  auto t = listener.accept(std::chrono::milliseconds(0));
  ASSERT_NE(t, nullptr);
  const auto f = t->recv(std::chrono::milliseconds(3000));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->round, 100u);
  listener.close();
}

TEST(UdpRealSocket, ChurnConcurrentWithLiveTraffic) {
  // The mux rework moves new-peer registration off the hot receive path:
  // established peers exchanging frames (each recv pumps the shared socket
  // or waits on its own per-peer cv) must not lose or stall traffic while
  // other threads churn short-lived peers through the registration and
  // tombstone paths.
  FecStats stats;
  UdpFecConfig cfg = small_cfg(&stats);
  UdpListener listener(0, cfg);
  constexpr int kPeers = 3;
  constexpr int kFramesPerPeer = 20;
  constexpr int kChurn = 30;

  // Establish the persistent peers first so their server ends exist before
  // the churn starts interleaving registrations.
  std::vector<std::unique_ptr<UdpTransport>> clients;
  std::vector<std::unique_ptr<Transport>> servers;
  for (int p = 0; p < kPeers; ++p) {
    auto link = UdpSocketLink::connect("127.0.0.1", listener.port());
    ASSERT_NE(link, nullptr);
    clients.push_back(std::make_unique<UdpTransport>(std::move(link), cfg));
    ASSERT_TRUE(clients.back()->send(test_frame(64, 1000 + static_cast<std::uint32_t>(p))));
    auto t = listener.accept(std::chrono::milliseconds(3000));
    ASSERT_NE(t, nullptr);
    ASSERT_TRUE(t->recv(std::chrono::milliseconds(3000)).has_value());
    servers.push_back(std::move(t));
  }

  std::atomic<int> echoed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kPeers; ++p) {
    threads.emplace_back([&, p] {  // server side: echo
      for (int i = 0; i < kFramesPerPeer; ++i) {
        auto f = servers[static_cast<std::size_t>(p)]->recv(
            std::chrono::milliseconds(5000));
        if (!f) return;
        if (!servers[static_cast<std::size_t>(p)]->send(*f)) return;
      }
    });
    threads.emplace_back([&, p] {  // client side: send + match echo
      for (int i = 0; i < kFramesPerPeer; ++i) {
        const Frame f = test_frame(
            64, static_cast<std::uint32_t>(2000 + p * kFramesPerPeer + i));
        if (!clients[static_cast<std::size_t>(p)]->send(f)) return;
        const auto echo = clients[static_cast<std::size_t>(p)]->recv(
            std::chrono::milliseconds(5000));
        if (!echo || echo->round != f.round) return;
        echoed.fetch_add(1);
      }
    });
  }

  // Churn transient peers through register -> retire while the echo
  // traffic runs. Transient client sockets stay open (see
  // MuxEvictsDroppedPeersUnderChurn for why).
  std::vector<std::unique_ptr<UdpTransport>> transient;
  for (int i = 0; i < kChurn; ++i) {
    auto link = UdpSocketLink::connect("127.0.0.1", listener.port());
    ASSERT_NE(link, nullptr);
    transient.push_back(std::make_unique<UdpTransport>(std::move(link), cfg));
    ASSERT_TRUE(transient.back()->send(test_frame(64, 5000 + static_cast<std::uint32_t>(i))));
    auto t = listener.accept(std::chrono::milliseconds(3000));
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->recv(std::chrono::milliseconds(3000)).has_value());
    t->close();
  }

  for (auto& th : threads) th.join();
  EXPECT_EQ(echoed.load(), kPeers * kFramesPerPeer);
  listener.close();
}

}  // namespace
}  // namespace adafl
