#include "core/utility.h"

#include <gtest/gtest.h>

#include "tensor/check.h"

namespace adafl::core {
namespace {

TEST(Similarity01, CosineMapsToUnitInterval) {
  std::vector<float> a{1, 0}, b{2, 0}, c{-1, 0}, d{0, 3};
  EXPECT_NEAR(similarity01(SimilarityMetric::kCosine, a, b), 1.0, 1e-9);
  EXPECT_NEAR(similarity01(SimilarityMetric::kCosine, a, c), 0.0, 1e-9);
  EXPECT_NEAR(similarity01(SimilarityMetric::kCosine, a, d), 0.5, 1e-9);
}

TEST(Similarity01, CosineZeroVectorIsNeutral) {
  std::vector<float> a{1, 2}, z{0, 0};
  EXPECT_NEAR(similarity01(SimilarityMetric::kCosine, a, z), 0.5, 1e-9);
}

TEST(Similarity01, KernelsAreOneForIdenticalVectors) {
  std::vector<float> a{1, -2, 3};
  EXPECT_NEAR(similarity01(SimilarityMetric::kL2Kernel, a, a), 1.0, 1e-6);
  EXPECT_NEAR(similarity01(SimilarityMetric::kEuclideanKernel, a, a), 1.0,
              1e-6);
}

TEST(Similarity01, KernelsDecayWithDistance) {
  std::vector<float> a{1, 0}, near{0.9f, 0.1f}, far{-1, 0};
  for (auto m : {SimilarityMetric::kL2Kernel,
                 SimilarityMetric::kEuclideanKernel}) {
    const double s_near = similarity01(m, a, near);
    const double s_far = similarity01(m, a, far);
    EXPECT_GT(s_near, s_far) << to_string(m);
    EXPECT_GE(s_far, 0.0);
    EXPECT_LE(s_near, 1.0);
  }
}

TEST(Similarity01, LengthMismatchThrows) {
  std::vector<float> a{1, 2}, b{1};
  EXPECT_THROW(similarity01(SimilarityMetric::kL2Kernel, a, b), CheckError);
}

TEST(UtilityScore, InUnitInterval) {
  UtilityConfig cfg;
  std::vector<float> g{1, 2, 3}, ghat{3, 2, 1};
  const double s = utility_score(cfg, g, ghat, 1e6, 1e6);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(UtilityScore, MonotoneInBandwidth) {
  UtilityConfig cfg;
  std::vector<float> g{1, 0}, ghat{1, 0};
  const double slow = utility_score(cfg, g, ghat, 0.1e6, 0.1e6);
  const double fast = utility_score(cfg, g, ghat, 5e6, 5e6);
  EXPECT_GT(fast, slow);
}

TEST(UtilityScore, BandwidthTermSaturatesAtReference) {
  UtilityConfig cfg;
  std::vector<float> g{1, 0}, ghat{1, 0};
  const double at_ref = utility_score(cfg, g, ghat, cfg.bw_ref, cfg.bw_ref);
  const double above = utility_score(cfg, g, ghat, 10 * cfg.bw_ref,
                                     10 * cfg.bw_ref);
  EXPECT_DOUBLE_EQ(at_ref, above);
}

TEST(UtilityScore, MinOfUpDownGoverns) {
  UtilityConfig cfg;
  std::vector<float> g{1, 0}, ghat{1, 0};
  const double asym = utility_score(cfg, g, ghat, 0.1e6, 100e6);
  const double sym = utility_score(cfg, g, ghat, 0.1e6, 0.1e6);
  EXPECT_DOUBLE_EQ(asym, sym);
}

TEST(UtilityScore, MonotoneInAlignment) {
  UtilityConfig cfg;
  std::vector<float> ghat{1, 0};
  std::vector<float> aligned{1, 0}, orthogonal{0, 1}, opposed{-1, 0};
  const double bw = cfg.bw_ref;
  EXPECT_GT(utility_score(cfg, aligned, ghat, bw, bw),
            utility_score(cfg, orthogonal, ghat, bw, bw));
  EXPECT_GT(utility_score(cfg, orthogonal, ghat, bw, bw),
            utility_score(cfg, opposed, ghat, bw, bw));
}

TEST(UtilityScore, WeightsAreNormalized) {
  // With w_sim = w_bw and perfect similarity + zero bandwidth, score = 0.5.
  UtilityConfig cfg;
  cfg.w_sim = 2.0;
  cfg.w_bw = 2.0;
  std::vector<float> g{1, 0};
  EXPECT_NEAR(utility_score(cfg, g, g, 0.0, 0.0), 0.5, 1e-9);
}

TEST(UtilityScore, InvalidConfigThrows) {
  UtilityConfig cfg;
  cfg.w_sim = 0.0;
  cfg.w_bw = 0.0;
  std::vector<float> g{1};
  EXPECT_THROW(utility_score(cfg, g, g, 1, 1), CheckError);
  UtilityConfig cfg2;
  cfg2.bw_ref = 0.0;
  EXPECT_THROW(utility_score(cfg2, g, g, 1, 1), CheckError);
  UtilityConfig cfg3;
  EXPECT_THROW(utility_score(cfg3, g, g, -1.0, 1), CheckError);
}

TEST(SimilarityMetricNames, AreStable) {
  EXPECT_STREQ(to_string(SimilarityMetric::kCosine), "cosine");
  EXPECT_STREQ(to_string(SimilarityMetric::kL2Kernel), "l2-kernel");
  EXPECT_STREQ(to_string(SimilarityMetric::kEuclideanKernel),
               "euclidean-kernel");
}

}  // namespace
}  // namespace adafl::core
