#include "compress/wire.h"

#include <gtest/gtest.h>

#include "tensor/check.h"

namespace adafl::compress {
namespace {

using tensor::Rng;

std::vector<float> random_grad(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> g(n);
  for (auto& v : g) v = static_cast<float>(rng.normal());
  return g;
}

void expect_same_decode(const EncodedGradient& a, const EncodedGradient& b) {
  const auto da = a.decode();
  const auto db = b.decode();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) EXPECT_EQ(da[i], db[i]);
}

TEST(Wire, BitWriterReaderRoundTrip) {
  BitWriter w;
  w.put(5, 3);
  w.put(0, 1);
  w.put(1023, 10);
  w.put(1, 1);
  const auto bytes = w.bytes();
  EXPECT_EQ(bytes.size(), 2u);  // 15 bits
  BitReader r(bytes);
  EXPECT_EQ(r.get(3), 5u);
  EXPECT_EQ(r.get(1), 0u);
  EXPECT_EQ(r.get(10), 1023u);
  EXPECT_EQ(r.get(1), 1u);
}

TEST(Wire, BitWriterRejectsOverflow) {
  BitWriter w;
  EXPECT_THROW(w.put(8, 3), CheckError);
  EXPECT_THROW(w.put(0, 0), CheckError);
}

TEST(Wire, BitReaderRejectsOverread) {
  BitWriter w;
  w.put(1, 4);
  BitReader r(w.bytes());
  r.get(4);
  // Remaining 4 padding bits exist in the byte; reading past them throws.
  r.get(4);
  EXPECT_THROW(r.get(1), CheckError);
}

TEST(Wire, IdentityRoundTrip) {
  auto g = random_grad(33, 1);
  Rng rng(2);
  IdentityCodec codec;
  auto e = codec.encode(g, rng);
  auto bytes = serialize(e);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), wire_size(e));
  EXPECT_EQ(wire_size(e), e.wire_bytes);  // identity: sizes agree exactly
  expect_same_decode(e, deserialize(bytes));
}

TEST(Wire, TopKRoundTrip) {
  auto g = random_grad(500, 3);
  Rng rng(4);
  TopKCodec codec(25.0);
  auto e = codec.encode(g, rng);
  auto bytes = serialize(e);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), e.wire_bytes);
  expect_same_decode(e, deserialize(bytes));
}

TEST(Wire, QsgdRoundTrip) {
  auto g = random_grad(257, 5);  // odd size exercises bit padding
  Rng rng(6);
  QsgdCodec codec(7);
  auto e = codec.encode(g, rng);
  auto bytes = serialize(e);
  // QSGD wire carries one extra byte (explicit level count).
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), e.wire_bytes + 1);
  auto d = deserialize(bytes);
  EXPECT_EQ(d.quant_levels, 7);
  EXPECT_EQ(d.scale, e.scale);
  expect_same_decode(e, d);
}

TEST(Wire, TernaryRoundTrip) {
  auto g = random_grad(129, 7);
  Rng rng(8);
  TernaryCodec codec;
  auto e = codec.encode(g, rng);
  auto bytes = serialize(e);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), e.wire_bytes);
  expect_same_decode(e, deserialize(bytes));
}

TEST(Wire, RejectsTruncatedBuffers) {
  auto g = random_grad(64, 9);
  Rng rng(10);
  TopKCodec codec(8.0);
  auto bytes = serialize(codec.encode(g, rng));
  bytes.pop_back();
  EXPECT_THROW(deserialize(bytes), CheckError);
  std::vector<std::uint8_t> tiny(4, 0);
  EXPECT_THROW(deserialize(tiny), CheckError);
}

TEST(Wire, RejectsUnknownKind) {
  std::vector<std::uint8_t> bytes(8, 0);
  bytes[0] = 99;
  EXPECT_THROW(deserialize(bytes), CheckError);
}

TEST(Wire, RejectsOutOfRangeTopKIndex) {
  auto g = random_grad(16, 11);
  Rng rng(12);
  TopKCodec codec(4.0);
  auto bytes = serialize(codec.encode(g, rng));
  // Corrupt the first index to dense_size.
  bytes[8] = 16;
  bytes[9] = bytes[10] = bytes[11] = 0;
  EXPECT_THROW(deserialize(bytes), CheckError);
}

// Round-trip property across sizes and codecs.
class WirePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WirePropertyTest, AllCodecsRoundTrip) {
  const auto n = static_cast<std::size_t>(GetParam());
  auto g = random_grad(n, 100 + n);
  Rng rng(200 + n);
  IdentityCodec ident;
  TopKCodec topk(4.0);
  QsgdCodec qsgd(15);
  TernaryCodec tern;
  for (Codec* codec :
       std::initializer_list<Codec*>{&ident, &topk, &qsgd, &tern}) {
    auto e = codec->encode(g, rng);
    expect_same_decode(e, deserialize(serialize(e)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WirePropertyTest,
                         ::testing::Values(1, 2, 7, 8, 9, 63, 64, 65, 1000));

}  // namespace
}  // namespace adafl::compress
