#include "compress/wire.h"

#include <gtest/gtest.h>

#include "tensor/check.h"

namespace adafl::compress {
namespace {

using tensor::Rng;

std::vector<float> random_grad(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> g(n);
  for (auto& v : g) v = static_cast<float>(rng.normal());
  return g;
}

void expect_same_decode(const EncodedGradient& a, const EncodedGradient& b) {
  const auto da = a.decode();
  const auto db = b.decode();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) EXPECT_EQ(da[i], db[i]);
}

TEST(Wire, BitWriterReaderRoundTrip) {
  BitWriter w;
  w.put(5, 3);
  w.put(0, 1);
  w.put(1023, 10);
  w.put(1, 1);
  const auto bytes = w.bytes();
  EXPECT_EQ(bytes.size(), 2u);  // 15 bits
  BitReader r(bytes);
  EXPECT_EQ(r.get(3), 5u);
  EXPECT_EQ(r.get(1), 0u);
  EXPECT_EQ(r.get(10), 1023u);
  EXPECT_EQ(r.get(1), 1u);
}

TEST(Wire, BitWriterRejectsOverflow) {
  BitWriter w;
  EXPECT_THROW(w.put(8, 3), CheckError);
  EXPECT_THROW(w.put(0, 0), CheckError);
}

TEST(Wire, BitReaderRejectsOverread) {
  BitWriter w;
  w.put(1, 4);
  BitReader r(w.bytes());
  r.get(4);
  // Remaining 4 padding bits exist in the byte; reading past them throws.
  r.get(4);
  EXPECT_THROW(r.get(1), CheckError);
}

TEST(Wire, IdentityRoundTrip) {
  auto g = random_grad(33, 1);
  Rng rng(2);
  IdentityCodec codec;
  auto e = codec.encode(g, rng);
  auto bytes = serialize(e);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), wire_size(e));
  EXPECT_EQ(wire_size(e), e.wire_bytes);  // identity: sizes agree exactly
  expect_same_decode(e, deserialize(bytes));
}

TEST(Wire, TopKRoundTrip) {
  auto g = random_grad(500, 3);
  Rng rng(4);
  TopKCodec codec(25.0);
  auto e = codec.encode(g, rng);
  auto bytes = serialize(e);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), e.wire_bytes);
  expect_same_decode(e, deserialize(bytes));
}

TEST(Wire, QsgdRoundTrip) {
  auto g = random_grad(257, 5);  // odd size exercises bit padding
  Rng rng(6);
  QsgdCodec codec(7);
  auto e = codec.encode(g, rng);
  auto bytes = serialize(e);
  // The level count rides in the header's aux byte, so the serialized size
  // matches the accounted wire size exactly (as for every other kind).
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), e.wire_bytes);
  auto d = deserialize(bytes);
  EXPECT_EQ(d.quant_levels, 7);
  EXPECT_EQ(d.scale, e.scale);
  expect_same_decode(e, d);
}

TEST(Wire, TernaryRoundTrip) {
  auto g = random_grad(129, 7);
  Rng rng(8);
  TernaryCodec codec;
  auto e = codec.encode(g, rng);
  auto bytes = serialize(e);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), e.wire_bytes);
  expect_same_decode(e, deserialize(bytes));
}

TEST(Wire, RejectsTruncatedBuffers) {
  auto g = random_grad(64, 9);
  Rng rng(10);
  TopKCodec codec(8.0);
  auto bytes = serialize(codec.encode(g, rng));
  bytes.pop_back();
  EXPECT_THROW(deserialize(bytes), CheckError);
  std::vector<std::uint8_t> tiny(4, 0);
  EXPECT_THROW(deserialize(tiny), CheckError);
}

TEST(Wire, RejectsUnknownKind) {
  std::vector<std::uint8_t> bytes(8, 0);
  bytes[0] = 99;
  EXPECT_THROW(deserialize(bytes), CheckError);
}

TEST(Wire, RejectsOutOfRangeTopKIndex) {
  auto g = random_grad(16, 11);
  Rng rng(12);
  TopKCodec codec(4.0);
  auto bytes = serialize(codec.encode(g, rng));
  // Corrupt the first index to dense_size.
  bytes[8] = 16;
  bytes[9] = bytes[10] = bytes[11] = 0;
  EXPECT_THROW(deserialize(bytes), CheckError);
}

TEST(Wire, SerializedSizeIsWireBytesForEveryKind) {
  auto g = random_grad(200, 13);
  Rng rng(14);
  IdentityCodec ident;
  TopKCodec topk(10.0);
  QsgdCodec qsgd(15);
  TernaryCodec tern;
  for (Codec* codec :
       std::initializer_list<Codec*>{&ident, &topk, &qsgd, &tern}) {
    auto e = codec->encode(g, rng);
    EXPECT_EQ(static_cast<std::int64_t>(serialize(e).size()), e.wire_bytes);
    EXPECT_EQ(wire_size(e), e.wire_bytes);
  }
}

TEST(Wire, RejectsNonzeroAuxForNonQsgd) {
  auto g = random_grad(32, 15);
  Rng rng(16);
  TopKCodec codec(4.0);
  auto bytes = serialize(codec.encode(g, rng));
  bytes[1] = 5;  // aux byte is only meaningful for QSGD
  EXPECT_THROW(deserialize(bytes), CheckError);
}

TEST(Wire, RejectsNonzeroReservedBytes) {
  auto g = random_grad(32, 17);
  Rng rng(18);
  TernaryCodec codec;
  auto bytes = serialize(codec.encode(g, rng));
  bytes[2] = 1;
  EXPECT_THROW(deserialize(bytes), CheckError);
}

TEST(Wire, RejectsForgedHugeDenseSize) {
  // A forged dense_size must be caught by the payload-size check before any
  // allocation sized by it.
  auto g = random_grad(64, 19);
  Rng rng(20);
  QsgdCodec qsgd(7);
  auto bytes = serialize(qsgd.encode(g, rng));
  bytes[4] = 0xFF;  // dense_size LSB -> ~4 billion
  bytes[5] = 0xFF;
  bytes[6] = 0xFF;
  bytes[7] = 0xFF;
  EXPECT_THROW(deserialize(bytes), CheckError);

  IdentityCodec ident;
  auto dense = serialize(ident.encode(g, rng));
  dense[7] = 0x7F;
  EXPECT_THROW(deserialize(dense), CheckError);
}

TEST(Wire, RejectsZeroQsgdLevelCount) {
  auto g = random_grad(16, 21);
  Rng rng(22);
  QsgdCodec qsgd(3);
  auto bytes = serialize(qsgd.encode(g, rng));
  bytes[1] = 0;  // level count of zero is meaningless
  EXPECT_THROW(deserialize(bytes), CheckError);
}

TEST(Wire, RejectsTruncatedQsgdAndTernaryPayloads) {
  auto g = random_grad(77, 23);
  Rng rng(24);
  QsgdCodec qsgd(15);
  auto qb = serialize(qsgd.encode(g, rng));
  qb.pop_back();
  EXPECT_THROW(deserialize(qb), CheckError);
  TernaryCodec tern;
  auto tb = serialize(tern.encode(g, rng));
  tb.pop_back();
  EXPECT_THROW(deserialize(tb), CheckError);
}

// Round-trip property across sizes and codecs.
class WirePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WirePropertyTest, AllCodecsRoundTrip) {
  const auto n = static_cast<std::size_t>(GetParam());
  auto g = random_grad(n, 100 + n);
  Rng rng(200 + n);
  IdentityCodec ident;
  TopKCodec topk(4.0);
  QsgdCodec qsgd(15);
  TernaryCodec tern;
  for (Codec* codec :
       std::initializer_list<Codec*>{&ident, &topk, &qsgd, &tern}) {
    auto e = codec->encode(g, rng);
    expect_same_decode(e, deserialize(serialize(e)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WirePropertyTest,
                         ::testing::Values(1, 2, 7, 8, 9, 63, 64, 65, 1000));

}  // namespace
}  // namespace adafl::compress
