// Steady-state allocation regression tests for the arena-backed hot path.
//
// The contract: after one warmup round, a client's local-training round —
// batch loading, forward/backward, optimizer steps, delta extraction, and
// DGC compression — performs ZERO tensor heap allocations. These tests pin
// it with the process-wide tensor::tensor_allocations() counter, so any
// future change that reintroduces a hidden Tensor construction on the hot
// path fails here with an exact count.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "compress/dgc.h"
#include "fl/client.h"
#include "fl_fixtures.h"
#include "metrics/trace.h"
#include "nn/model.h"
#include "nn/models.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace adafl {
namespace {

TEST(ZeroAlloc, ModelTrainBatchSteadyState) {
  auto task = fl::testing::make_mini_task(1);
  nn::Model model(task.factory());
  // momentum > 0 exercises the velocity-state path of the optimizer, which
  // historically allocated on reset.
  nn::Sgd opt(0.1f, 0.9f);

  const std::vector<std::int32_t> idx{0, 1, 2, 3, 4, 5, 6, 7};
  const nn::Batch batch = task.train.gather(idx);
  (void)model.train_batch(batch, opt);  // warmup: arena + grads grow
  (void)model.train_batch(batch, opt);  // settle any lazy second-pass state

  const std::uint64_t before = tensor::tensor_allocations();
  for (int i = 0; i < 3; ++i) (void)model.train_batch(batch, opt);
  EXPECT_EQ(tensor::tensor_allocations() - before, 0u)
      << "train_batch allocated tensors in steady state";
}

TEST(ZeroAlloc, ModelAccuracySteadyState) {
  auto task = fl::testing::make_mini_task(1);
  nn::Model model(task.factory());
  const nn::Batch batch = task.test.all();
  (void)model.accuracy(batch);  // warmup

  const std::uint64_t before = tensor::tensor_allocations();
  (void)model.accuracy(batch);
  EXPECT_EQ(tensor::tensor_allocations() - before, 0u);
}

TEST(ZeroAlloc, ClientRoundSteadyState) {
  // The full per-client round the simulator and the deployed client run:
  // train_from_into + compress_into, with every buffer owned by the caller
  // or the client. Round 1 warms; rounds 2+ must not allocate.
  auto task = fl::testing::make_mini_task(2);
  auto clients = fl::make_clients(task.factory, &task.train, task.parts,
                                  task.client, {}, 7);
  nn::Model probe(task.factory());
  std::vector<float> global = probe.get_flat();
  const auto dim = static_cast<std::int64_t>(global.size());

  compress::DgcConfig dgc_cfg;
  dgc_cfg.momentum = 0.9f;  // exercise the momentum/velocity buffers
  std::vector<compress::DgcCompressor> comps;
  for (std::size_t i = 0; i < clients.size(); ++i)
    comps.emplace_back(dim, dgc_cfg);

  std::vector<fl::FlClient::LocalResult> results(clients.size());
  std::vector<compress::EncodedGradient> msgs(clients.size());
  auto one_round = [&] {
    for (std::size_t i = 0; i < clients.size(); ++i) {
      clients[i].train_from_into(global, results[i]);
      comps[i].compress_into(results[i].delta, 8.0, msgs[i]);
    }
  };

  one_round();  // warmup
  const std::uint64_t before = tensor::tensor_allocations();
  one_round();
  one_round();
  EXPECT_EQ(tensor::tensor_allocations() - before, 0u)
      << "client round allocated tensors in steady state";
}

TEST(ZeroAlloc, TracedClientRoundSteadyState) {
  // Structured tracing rides along with the hot path (the trainers record
  // per-selection and per-delivery events and flush at round boundaries);
  // an *enabled* tracer must not break the steady-state zero-tensor-
  // allocation guarantee above.
  auto task = fl::testing::make_mini_task(2);
  auto clients = fl::make_clients(task.factory, &task.train, task.parts,
                                  task.client, {}, 7);
  nn::Model probe(task.factory());
  std::vector<float> global = probe.get_flat();
  const auto dim = static_cast<std::int64_t>(global.size());

  std::vector<compress::DgcCompressor> comps;
  for (std::size_t i = 0; i < clients.size(); ++i)
    comps.emplace_back(dim, compress::DgcConfig{});

  const std::string path = ::testing::TempDir() + "zero_alloc_trace.jsonl";
  metrics::Tracer tracer;
  tracer.open(path, metrics::RunManifest{});

  std::vector<fl::FlClient::LocalResult> results(clients.size());
  std::vector<compress::EncodedGradient> msgs(clients.size());
  int round = 0;
  auto one_round = [&] {
    ++round;
    tracer.record(metrics::ev_round_start(round, 0.0));
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const int id = static_cast<int>(i);
      tracer.record(metrics::ev_client_selected(round, id, 0.5, 8.0));
      clients[i].train_from_into(global, results[i]);
      comps[i].compress_into(results[i].delta, 8.0, msgs[i]);
      tracer.record(metrics::ev_update_delivered(
          round, id, msgs[i].wire_bytes, 8, results[i].mean_loss));
    }
    tracer.record(metrics::ev_round_end(
        round, static_cast<int>(clients.size()), 1.0, false, 0.0, 0.0));
    tracer.flush();
  };

  one_round();  // warmup
  const std::uint64_t before = tensor::tensor_allocations();
  one_round();
  one_round();
  EXPECT_EQ(tensor::tensor_allocations() - before, 0u)
      << "tracing allocated tensors in steady state";
  tracer.close();
  EXPECT_GT(metrics::read_trace_file(path).events.size(), 0u);
  std::remove(path.c_str());
}

TEST(ZeroAlloc, WarmupDoesAllocate) {
  // Sanity check on the counter itself: the warmup round is NOT free, so a
  // zero in the tests above means reuse, not a dead counter.
  auto task = fl::testing::make_mini_task(1);
  auto clients = fl::make_clients(task.factory, &task.train, task.parts,
                                  task.client, {}, 7);
  nn::Model probe(task.factory());
  std::vector<float> global = probe.get_flat();

  fl::FlClient::LocalResult res;
  const std::uint64_t before = tensor::tensor_allocations();
  clients[0].train_from_into(global, res);
  EXPECT_GT(tensor::tensor_allocations() - before, 0u);
}

}  // namespace
}  // namespace adafl
