// Harness for the hierarchical-tier tests: runs the same small AdaFL task
// through a tiered deployment — root ServerSession, one or more RelaySession
// mid-tiers, leaf ClientSessions — so the result can be compared bitwise
// against the flat deployed path and the in-process simulator with the same
// AdaFlParams::agg_group (the tier-transparency guarantee).
//
// Topology is declarative: each RelaySpec names its leaf range and parent
// (the root or another relay, for 3-level trees). Leaves are auto-routed to
// the most specific relay covering their id; standby relays of the same
// range land later in the leaf's dial rotation list, so killing the primary
// makes the leaves fail over exactly as flclient --server=a,b does.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "deployed_test_util.h"
#include "net/relay/relay.h"

namespace adafl::testutil {

struct RelaySpec {
  int base = 0;
  int count = 0;
  /// -1 = dial the root server; otherwise the index of the parent relay.
  int parent = -1;
  /// Dormant until a child dials (hot-standby relay semantics).
  bool standby = false;
};

enum class TierLink {
  kLoopback,  ///< in-process stream pairs (the TCP framing, minus the kernel)
  kTcp,       ///< real sockets on 127.0.0.1, accept threads like flserver
  kUdpFec,    ///< FEC-coded datagram transport over in-process links
};

struct TieredResult {
  fl::TrainLog log;
  std::vector<float> global;
  core::AdaFlStats stats;
  std::vector<net::transport::ClientRunStats> clients;
  std::vector<net::relay::RelayRunStats> relay_stats;
};

struct TieredOptions {
  TierLink link = TierLink::kLoopback;
  /// kTcp only: drive the root with the epoll event loop (the flserver
  /// production path) instead of a classic accept thread, so the relay
  /// handshake and UPDATE-AGG dispatch run through the loop integration.
  bool root_event_loop = false;
  metrics::Tracer* tracer = nullptr;
  /// Decorates each leaf's transport on every (re)dial — script faults here.
  TransportWrapFn leaf_wrap = nullptr;
  /// Tweaks a leaf's session config (backoff, liveness) before it runs.
  std::function<void(int id, net::transport::ClientSessionConfig&)>
      leaf_cfg_tweak = nullptr;
  /// FEC shape for TierLink::kUdpFec.
  net::transport::UdpFecConfig fec;
  int quorum = 0;  ///< 0 = wait for every expected client
  std::chrono::milliseconds round_deadline{30000};
  /// Scripted mid-run relay crash: relay `kill_relay` severs its parent
  /// link on `kill_round`'s MODEL and stops abruptly (children dropped
  /// without SHUTDOWN), like a kill -9 of the flrelay process.
  int kill_relay = -1;
  int kill_round = 0;
};

/// One relay plus the scaffolding that makes it dial-able and killable.
struct RelayRuntime {
  std::unique_ptr<net::relay::RelaySession> session;
  std::thread thread;
  std::atomic<bool> alive{true};
  std::unique_ptr<net::transport::TcpListener> listener;  // kTcp only
  std::thread acceptor;                                   // kTcp only
  net::relay::RelayRunStats stats;
};

inline TieredResult run_deployed_tiered(const cli::TaskSpec& spec,
                                        const fl::ClientTrainConfig& client,
                                        const core::AdaFlParams& params,
                                        int rounds,
                                        const std::vector<RelaySpec>& relays,
                                        const TieredOptions& opt = {}) {
  using namespace net::transport;
  ADAFL_CHECK_MSG(params.agg_group > 0,
                  "tier harness: tiered runs need agg_group > 0");
  auto task = cli::build_task(spec);
  ServerSessionConfig scfg = make_server_config(spec, client, params, rounds);
  scfg.tracer = opt.tracer;
  scfg.quorum = opt.quorum;
  scfg.round_deadline = opt.round_deadline;
  scfg.retransmit_nudge = std::chrono::milliseconds(
      opt.link == TierLink::kLoopback ? 100 : 300);
  ServerSession server(scfg, task.factory, &task.test);

  const bool tcp = opt.link == TierLink::kTcp;
  const bool udp = opt.link == TierLink::kUdpFec;

  std::unique_ptr<TcpListener> root_listener;
  std::atomic<bool> accept_done{false};
  std::thread root_acceptor;
  std::unique_ptr<EventLoop> root_loop;
  if (tcp) {
    root_listener = std::make_unique<TcpListener>(0);
    if (opt.root_event_loop) {
      root_loop = std::make_unique<EventLoop>(EventLoopConfig{});
      root_loop->adopt_listener(root_listener->fd());
      server.attach_event_loop(root_loop.get());
    } else {
      root_acceptor = std::thread([&] {
        while (!accept_done.load()) {
          auto t = root_listener->accept(std::chrono::milliseconds(20));
          if (t) server.add_transport(std::move(t));
        }
      });
    }
  }

  // Dials the root server; nullptr on failure (kTcp connection refused).
  const auto connect_root = [&]() -> std::unique_ptr<Transport> {
    if (tcp)
      return TcpTransport::connect("127.0.0.1", root_listener->port(),
                                   std::chrono::milliseconds(1000));
    if (udp) {
      auto [a, b] = make_datagram_loopback_pair();
      server.add_transport(std::make_unique<UdpTransport>(std::move(a),
                                                          opt.fec));
      return std::make_unique<UdpTransport>(std::move(b), opt.fec);
    }
    auto pair = make_loopback_pair();
    server.add_transport(std::move(pair.first));
    return std::move(pair.second);
  };

  std::vector<std::unique_ptr<RelayRuntime>> rts;
  for (std::size_t i = 0; i < relays.size(); ++i)
    rts.push_back(std::make_unique<RelayRuntime>());

  // Dials relay `i`'s child side; nullptr when the relay is gone, so a
  // leaf's backoff budget drains fast and it rotates to the standby.
  const auto connect_relay =
      [&](std::size_t i) -> std::unique_ptr<Transport> {
    RelayRuntime& rt = *rts[i];
    if (!rt.alive.load()) return nullptr;
    if (tcp)
      return TcpTransport::connect("127.0.0.1", rt.listener->port(),
                                   std::chrono::milliseconds(1000));
    if (udp) {
      auto [a, b] = make_datagram_loopback_pair();
      rt.session->add_child_transport(
          std::make_unique<UdpTransport>(std::move(a), opt.fec));
      return std::make_unique<UdpTransport>(std::move(b), opt.fec);
    }
    auto pair = make_loopback_pair();
    rt.session->add_child_transport(std::move(pair.first));
    return std::move(pair.second);
  };

  for (std::size_t i = 0; i < relays.size(); ++i) {
    const RelaySpec& rs = relays[i];
    RelayRuntime& rt = *rts[i];
    net::relay::RelayConfig rcfg;
    rcfg.base = rs.base;
    rcfg.count = rs.count;
    rcfg.standby = rs.standby;
    rcfg.idle_poll = std::chrono::milliseconds(2);
    rcfg.heartbeat_interval = std::chrono::milliseconds(300);
    rcfg.liveness_timeout = std::chrono::milliseconds(3000);
    rcfg.retransmit_nudge = std::chrono::milliseconds(
        opt.link == TierLink::kLoopback ? 100 : 300);
    rcfg.backoff.initial = std::chrono::milliseconds(10);
    rcfg.backoff.max = std::chrono::milliseconds(100);
    rcfg.backoff.max_attempts = 50;
    const bool killed_here = static_cast<int>(i) == opt.kill_relay;
    const int parent_idx = rs.parent;
    rt.session = std::make_unique<net::relay::RelaySession>(
        rcfg,
        [&, parent_idx, killed_here, i](std::size_t) {
          std::unique_ptr<Transport> t =
              parent_idx < 0
                  ? connect_root()
                  : connect_relay(static_cast<std::size_t>(parent_idx));
          if (!t || !killed_here) return t;
          // The scripted crash: sever on the kill round's MODEL and stop
          // the whole relay abruptly — children get no goodbye, exactly
          // like kill -9 on a real flrelay.
          FaultPlan plan;
          plan.sever_on_recv(MsgType::kModel, opt.kill_round);
          auto faulty = std::make_unique<FaultyTransport>(std::move(t),
                                                          std::move(plan));
          faulty->set_on_fault([&rt](const FaultRule&, const Frame&) {
            rt.alive.store(false);
            if (rt.listener) rt.listener->close();
            rt.session->request_stop();
          });
          return std::unique_ptr<Transport>(std::move(faulty));
        },
        1);
    if (tcp) {
      rt.listener = std::make_unique<TcpListener>(0);
      rt.acceptor = std::thread([&rt] {
        while (!rt.listener->closed()) {
          auto t = rt.listener->accept(std::chrono::milliseconds(20));
          if (t && rt.alive.load())
            rt.session->add_child_transport(std::move(t));
        }
      });
    }
    rt.thread = std::thread([&rt] { rt.stats = rt.session->run(); });
  }

  // Leaf routing: most specific covering relay; standbys after primaries.
  const auto dial_list_for = [&](int id) {
    std::vector<std::size_t> list;
    int best = std::numeric_limits<int>::max();
    for (const RelaySpec& rs : relays)
      if (id >= rs.base && id < rs.base + rs.count)
        best = std::min(best, rs.count);
    for (int pass = 0; pass < 2; ++pass)
      for (std::size_t i = 0; i < relays.size(); ++i)
        if (id >= relays[i].base &&
            id < relays[i].base + relays[i].count &&
            relays[i].count == best &&
            relays[i].standby == (pass == 1))
          list.push_back(i);
    ADAFL_CHECK_MSG(!list.empty(),
                    "tier harness: leaf " << id << " has no covering relay");
    return list;
  };

  const int n = spec.clients;
  std::vector<std::optional<cli::TaskBundle>> bundles(
      static_cast<std::size_t>(n));
  TieredResult res;
  res.clients.resize(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      ClientSessionConfig ccfg = test_client_config(id);
      if (opt.leaf_cfg_tweak) opt.leaf_cfg_tweak(id, ccfg);
      const auto dials = dial_list_for(id);
      ClientSession cs(
          ccfg,
          [&, id, dials](std::size_t ep) -> std::unique_ptr<Transport> {
            auto t = connect_relay(dials[ep % dials.size()]);
            if (t && opt.leaf_wrap) t = opt.leaf_wrap(id, std::move(t));
            return t;
          },
          dials.size(),
          make_bootstrap(&bundles[static_cast<std::size_t>(id)]));
      res.clients[static_cast<std::size_t>(id)] = cs.run();
    });
  }

  res.log = server.run();
  for (auto& t : threads) t.join();
  for (auto& rtp : rts) {
    RelayRuntime& rt = *rtp;
    rt.session->request_stop();
    if (rt.listener) rt.listener->close();
    if (rt.thread.joinable()) rt.thread.join();
    if (rt.acceptor.joinable()) rt.acceptor.join();
    res.relay_stats.push_back(rt.stats);
  }
  if (tcp) {
    accept_done.store(true);
    root_listener->close();
    if (root_acceptor.joinable()) root_acceptor.join();
  }
  res.global = server.global();
  res.stats = server.stats();
  return res;
}

/// Flat (relay-free) loopback run where `crash_ids` permanently die on
/// `crash_round`'s MODEL: the connection severs and every redial is refused,
/// so the server continues on quorum with the survivors. The twin of a
/// tiered run whose relay is killed on the same round without a standby.
inline DeployedResult run_deployed_flat_crash(
    const cli::TaskSpec& spec, const fl::ClientTrainConfig& client,
    const core::AdaFlParams& params, int rounds,
    const std::set<int>& crash_ids, int crash_round, int quorum,
    std::chrono::milliseconds round_deadline) {
  using namespace net::transport;
  auto task = cli::build_task(spec);
  ServerSessionConfig scfg = make_server_config(spec, client, params, rounds);
  scfg.quorum = quorum;
  scfg.round_deadline = round_deadline;
  scfg.retransmit_nudge = std::chrono::milliseconds(100);
  ServerSession server(scfg, task.factory, &task.test);

  const int n = spec.clients;
  std::vector<std::optional<cli::TaskBundle>> bundles(
      static_cast<std::size_t>(n));
  DeployedResult res;
  res.clients.resize(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      ClientSessionConfig ccfg = test_client_config(id);
      const bool crashes = crash_ids.count(id) != 0;
      auto crash_fired = std::make_shared<std::atomic<bool>>(false);
      if (crashes) {  // drain the redial budget fast after the crash
        ccfg.backoff.initial = std::chrono::milliseconds(1);
        ccfg.backoff.max = std::chrono::milliseconds(10);
        ccfg.backoff.max_attempts = 5;
      }
      ClientSession cs(
          ccfg,
          [&server, crashes, crash_round,
           crash_fired]() -> std::unique_ptr<Transport> {
            if (crash_fired->load()) return nullptr;  // stays dead
            auto pair = make_loopback_pair();
            server.add_transport(std::move(pair.first));
            std::unique_ptr<Transport> t = std::move(pair.second);
            if (crashes) {
              FaultPlan plan;
              plan.sever_on_recv(MsgType::kModel, crash_round);
              auto faulty = std::make_unique<FaultyTransport>(
                  std::move(t), std::move(plan));
              faulty->set_on_fault(
                  [crash_fired](const FaultRule&, const Frame&) {
                    crash_fired->store(true);
                  });
              t = std::move(faulty);
            }
            return t;
          },
          make_bootstrap(&bundles[static_cast<std::size_t>(id)]));
      res.clients[static_cast<std::size_t>(id)] = cs.run();
    });
  }
  res.log = server.run();
  for (auto& t : threads) t.join();
  res.global = server.global();
  res.stats = server.stats();
  return res;
}

}  // namespace adafl::testutil
